package catalog

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hsm"
	"repro/internal/metadb"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/synthetic"
	"repro/internal/tape"
	"repro/internal/tsm"
)

func newCat() (*simtime.Clock, *Catalog) {
	c := simtime.NewClock()
	return c, New(c, 500*time.Microsecond)
}

func entry(path, project, owner string, size int64, mod time.Duration) Entry {
	return Entry{Path: path, Project: project, Owner: owner, Size: size, ModTime: mod}
}

func seed(cat *Catalog) {
	cat.Upsert(entry("/astro/a1", "astro", "alice", 100, 10*time.Second))
	cat.Upsert(entry("/astro/a2", "astro", "bob", 5000, 20*time.Second))
	cat.Upsert(entry("/mat/m1", "materials", "alice", 200, 30*time.Second))
	cat.Upsert(entry("/mat/m2", "materials", "alice", 9000, 40*time.Second))
	cat.Upsert(entry("/laser/l1", "laser", "carol", 50, 50*time.Second))
}

func runCat(t *testing.T, fn func(cat *Catalog)) {
	t.Helper()
	c, cat := newCat()
	c.Go(func() { fn(cat) })
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchByProject(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		seed(cat)
		got := cat.Search(Query{Project: "astro"})
		if len(got) != 2 || got[0].Path != "/astro/a1" || got[1].Path != "/astro/a2" {
			t.Errorf("got %+v", got)
		}
	})
}

func TestSearchMultiDimensional(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		seed(cat)
		// Owner alice AND size >= 150 AND modified after 25s: only m1
		// fails size? m1=200 >= 150 ok mod 30s ok; m2=9000 mod 40s ok;
		// a1 is alice but size 100 < 150.
		got := cat.Search(Query{Owner: "alice", MinSize: 150, ModifiedAfter: 25 * time.Second})
		if len(got) != 2 || got[0].Path != "/mat/m1" || got[1].Path != "/mat/m2" {
			t.Errorf("got %+v", got)
		}
	})
}

func TestSearchSizeRange(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		seed(cat)
		got := cat.Search(Query{MinSize: 100, MaxSize: 300})
		if len(got) != 2 {
			t.Errorf("got %d entries, want 2 (a1, m1)", len(got))
		}
	})
}

func TestSearchTimeWindow(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		seed(cat)
		got := cat.Search(Query{ModifiedAfter: 15 * time.Second, ModifiedBefore: 45 * time.Second})
		if len(got) != 3 {
			t.Errorf("got %d entries, want 3", len(got))
		}
	})
}

func TestSearchPathPrefixAndLimit(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		seed(cat)
		got := cat.Search(Query{PathPrefix: "/mat/"})
		if len(got) != 2 {
			t.Errorf("prefix: got %d, want 2", len(got))
		}
		got = cat.Search(Query{Limit: 2})
		if len(got) != 2 {
			t.Errorf("limit: got %d, want 2", len(got))
		}
	})
}

func TestSearchTags(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		e := entry("/x/t", "x", "dave", 1, 0)
		e.Tags = map[string]string{"campaign": "run7", "quality": "gold"}
		cat.Upsert(e)
		cat.Upsert(entry("/x/u", "x", "dave", 1, 0))
		got := cat.Search(Query{Tags: map[string]string{"campaign": "run7"}})
		if len(got) != 1 || got[0].Path != "/x/t" {
			t.Errorf("got %+v", got)
		}
		if got := cat.Search(Query{Tags: map[string]string{"campaign": "run8"}}); len(got) != 0 {
			t.Errorf("wrong tag matched: %+v", got)
		}
	})
}

func TestSearchMissingIndexValue(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		seed(cat)
		if got := cat.Search(Query{Project: "nonexistent"}); len(got) != 0 {
			t.Errorf("got %+v", got)
		}
		if got := cat.Search(Query{Owner: "mallory"}); len(got) != 0 {
			t.Errorf("got %+v", got)
		}
	})
}

func TestUpsertReplacesAndReindexes(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		cat.Upsert(entry("/p/f", "old", "alice", 10, 0))
		cat.Upsert(entry("/p/f", "new", "bob", 20, 0))
		if cat.Len() != 1 {
			t.Errorf("Len = %d, want 1", cat.Len())
		}
		if got := cat.Search(Query{Project: "old"}); len(got) != 0 {
			t.Error("stale project index")
		}
		if got := cat.Search(Query{Project: "new", Owner: "bob"}); len(got) != 1 {
			t.Error("new index missing")
		}
	})
}

func TestRemove(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		seed(cat)
		cat.Remove("/astro/a1")
		cat.Remove("/does/not/exist") // no-op
		if cat.Len() != 4 {
			t.Errorf("Len = %d, want 4", cat.Len())
		}
		if got := cat.Search(Query{Project: "astro"}); len(got) != 1 {
			t.Errorf("got %+v", got)
		}
	})
}

func TestStateQuery(t *testing.T) {
	runCat(t, func(cat *Catalog) {
		e := entry("/p/mig", "p", "", 1, 0)
		e.State = pfs.Migrated
		e.Volume = "VOL0007"
		cat.Upsert(e)
		cat.Upsert(entry("/p/res", "p", "", 1, 0))
		mig := pfs.Migrated
		got := cat.Search(Query{State: &mig})
		if len(got) != 1 || got[0].Path != "/p/mig" {
			t.Errorf("got %+v", got)
		}
		got = cat.Search(Query{Volume: "VOL0007"})
		if len(got) != 1 {
			t.Errorf("volume query: %+v", got)
		}
	})
}

func TestSearchChargesTime(t *testing.T) {
	c, cat := newCat()
	c.Go(func() {
		seed(cat)
		for i := 0; i < 10; i++ {
			cat.Search(Query{Project: "astro"})
		}
	})
	end := c.RunFor()
	if end != 10*500*time.Microsecond {
		t.Errorf("10 searches took %v, want 5ms", end)
	}
	if cat.Queries() != 10 {
		t.Errorf("Queries = %d", cat.Queries())
	}
}

func TestIndexArchiveEndToEnd(t *testing.T) {
	clock := simtime.NewClock()
	cfg := pfs.GPFSConfig("gpfs")
	cfg.MetaOpCost = 0
	fs := pfs.New(clock, cfg)
	lib := tape.NewLibrary(clock, 2, 16, 1, tape.LTO4())
	srv := tsm.NewServer(clock, tsm.DefaultConfig(), lib)
	shadow := metadb.New(clock, 100*time.Microsecond)
	cl := cluster.New(clock, cluster.RoadrunnerConfig())
	eng := hsm.New(clock, fs, srv, shadow, cl.Nodes(), hsm.Config{})
	cat := New(clock, 500*time.Microsecond)
	clock.Go(func() {
		fs.MkdirAll("/astro")
		fs.MkdirAll("/materials")
		var infos []pfs.Info
		for i := 0; i < 4; i++ {
			p := fmt.Sprintf("/astro/f%d", i)
			fs.WriteFile(p, synthetic.NewUniform(uint64(i+1), 1e6))
			fs.SetXattr(p, "owner", "alice")
			info, _ := fs.Stat(p)
			infos = append(infos, info)
		}
		fs.WriteFile("/materials/m0", synthetic.NewUniform(99, 2e6))
		// Migrate the astro files so they carry tape volumes.
		if _, err := eng.Migrate(infos, hsm.MigrateOptions{}); err != nil {
			t.Fatal(err)
		}
		n, err := IndexArchive(cat, fs, shadow, nil)
		if err != nil || n != 5 {
			t.Fatalf("IndexArchive = %d, %v", n, err)
		}
		mig := pfs.Migrated
		got := cat.Search(Query{Project: "astro", State: &mig})
		if len(got) != 4 {
			t.Fatalf("astro migrated = %d, want 4", len(got))
		}
		for _, e := range got {
			if e.Volume == "" {
				t.Errorf("%s missing tape volume", e.Path)
			}
			if e.Owner != "alice" {
				t.Errorf("%s owner = %q", e.Path, e.Owner)
			}
		}
		// Find everything on one tape — the pre-recall planning query.
		vol := got[0].Volume
		onTape := cat.Search(Query{Volume: vol})
		if len(onTape) == 0 {
			t.Error("volume query found nothing")
		}
	})
	if _, err := clock.Run(); err != nil {
		t.Fatal(err)
	}
}
