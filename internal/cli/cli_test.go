package cli

import (
	"testing"

	"repro/internal/simtime"
)

func TestSpecFromFlags(t *testing.T) {
	f := &Flags{Files: 100, TotalGB: 10, Seed: 1}
	spec := f.Spec()
	if spec.NumFiles != 100 {
		t.Errorf("NumFiles = %d", spec.NumFiles)
	}
	if spec.TotalBytes != 10e9 {
		t.Errorf("TotalBytes = %d", spec.TotalBytes)
	}
	if spec.AvgFileSize != 1e8 {
		t.Errorf("AvgFileSize = %d", spec.AvgFileSize)
	}
}

func TestSpecClampsFiles(t *testing.T) {
	f := &Flags{Files: 0, TotalGB: 1}
	if f.Spec().NumFiles != 1 {
		t.Error("zero files should clamp to 1")
	}
}

func TestTunablesFromFlags(t *testing.T) {
	f := &Flags{Workers: 7, ReadDirs: 3, TapeProcs: 2, Verbose: true, Restart: true}
	tun := f.Tunables()
	if tun.NumWorkers != 7 || tun.NumReadDirs != 3 || tun.NumTapeProcs != 2 {
		t.Errorf("tunables = %+v", tun)
	}
	if !tun.Verbose || !tun.Restart {
		t.Error("flags not propagated")
	}
}

func TestDeployBuildsTree(t *testing.T) {
	clock := simtime.NewClock()
	f := &Flags{Files: 50, TotalGB: 1, Seed: 9, Workers: 4, ReadDirs: 1, TapeProcs: 1}
	clock.Go(func() {
		sys, err := Deploy(clock, f)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Scratch.NumFiles() != 50 {
			t.Errorf("NumFiles = %d, want 50", sys.Scratch.NumFiles())
		}
		if got := sys.Scratch.TotalBytes(); got != 1e9 {
			t.Errorf("TotalBytes = %d, want 1e9", got)
		}
		// The tree is usable by PFTool directly.
		res, err := sys.Pfls("scratch", "/src", f.Tunables())
		if err != nil {
			t.Fatal(err)
		}
		if res.FilesListed != 50 {
			t.Errorf("FilesListed = %d", res.FilesListed)
		}
	})
	if _, err := clock.Run(); err != nil {
		t.Fatal(err)
	}
}
