// Package cli holds the shared scaffolding of the pfls/pfcp/pfcm
// command-line tools: since the real commands operated on live GPFS and
// Panasas mounts, the simulated ones first stand up a deployment and
// synthesize a source tree, both described by flags.
package cli

import (
	"flag"
	"fmt"

	"repro/internal/archive"
	"repro/internal/pftool"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Flags are the common tool flags.
type Flags struct {
	Files     int
	TotalGB   float64
	Workers   int
	ReadDirs  int
	TapeProcs int
	Seed      int64
	Verbose   bool
	Restart   bool
}

// Register installs the common flags on the default flag set.
func Register() *Flags {
	f := &Flags{}
	flag.IntVar(&f.Files, "files", 1000, "files in the synthetic source tree")
	flag.Float64Var(&f.TotalGB, "gb", 100, "total gigabytes in the source tree")
	flag.IntVar(&f.Workers, "workers", 20, "PFTool worker processes")
	flag.IntVar(&f.ReadDirs, "readdirs", 4, "PFTool ReadDir processes")
	flag.IntVar(&f.TapeProcs, "tapeprocs", 4, "PFTool TapeProc processes")
	flag.Int64Var(&f.Seed, "seed", 2010, "synthetic data seed")
	flag.BoolVar(&f.Verbose, "v", false, "one output line per entry")
	flag.BoolVar(&f.Restart, "restart", false, "skip already-transferred files/chunks")
	return f
}

// Tunables converts flags to PFTool tunables.
func (f *Flags) Tunables() pftool.Tunables {
	t := pftool.DefaultTunables()
	t.NumWorkers = f.Workers
	t.NumReadDirs = f.ReadDirs
	t.NumTapeProcs = f.TapeProcs
	t.Verbose = f.Verbose
	t.Restart = f.Restart
	return t
}

// Spec builds the synthetic job description from the flags.
func (f *Flags) Spec() workload.JobSpec {
	total := int64(f.TotalGB * 1e9)
	files := f.Files
	if files < 1 {
		files = 1
	}
	return workload.JobSpec{
		ID: 1, Project: "cli",
		NumFiles:    files,
		TotalBytes:  total,
		AvgFileSize: total / int64(files),
	}
}

// Deploy stands up the paper's deployment and materializes the source
// tree at /src on scratch. Call from within a clock actor.
func Deploy(clock *simtime.Clock, f *Flags) (*archive.System, error) {
	sys := archive.NewDefault(clock)
	if _, err := workload.BuildTree(sys.Scratch, "/src", f.Spec(), f.Seed, 2048); err != nil {
		return nil, fmt.Errorf("building source tree: %w", err)
	}
	return sys, nil
}
