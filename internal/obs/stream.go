package obs

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// The /events and /spans endpoints tail the flight-recorder ring as
// NDJSON: one JSON record per line, flushed as the simulation
// progresses, ending when the run settles (or the client hangs up).
// Records embed the exact FlightEvent/FlightSpan structs the
// -flight-record dump serializes, so the stream and the dump cannot
// drift. A tailer that polls slower than the ring turns over receives
// an explicit "missed" record instead of silent gaps.

// streamPoll is the real-time gap between ring reads while following.
const streamPoll = 50 * time.Millisecond

// StreamRecord is one NDJSON line of /events or /spans.
type StreamRecord struct {
	// Type: "event" (flight event), "span" (closed span), "span_open"
	// (span newly observed open), "missed" (ring overtook the tailer).
	Type   string                 `json:"type"`
	Missed int                    `json:"missed,omitempty"`
	Event  *telemetry.FlightEvent `json:"event,omitempty"`
	Span   *telemetry.FlightSpan  `json:"span,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.stream(w, r, false)
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("follow") == "0" {
		// One-shot: the flight dump itself, the same document
		// -flight-record writes.
		var dump *telemetry.FlightDump
		s.gate.Do(func() { dump = s.tel.FlightDump() })
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump)
		return
	}
	s.stream(w, r, true)
}

func (s *Server) stream(w http.ResponseWriter, r *http.Request, spans bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	oneShot := r.URL.Query().Get("follow") == "0"

	var cursor uint64
	announced := make(map[uint64]bool) // span IDs already sent as span_open
	for {
		var tail *telemetry.FlightTail
		s.gate.Do(func() { tail = s.tel.FlightSince(cursor) })
		fresh := tail.Cursor != cursor || cursor == 0
		cursor = tail.Cursor

		if tail.Missed > 0 {
			if err := enc.Encode(StreamRecord{Type: "missed", Missed: tail.Missed}); err != nil {
				return
			}
		}
		if spans {
			for i := range tail.Open {
				sp := &tail.Open[i]
				if !announced[sp.ID] {
					announced[sp.ID] = true
					if err := enc.Encode(StreamRecord{Type: "span_open", Span: sp}); err != nil {
						return
					}
				}
			}
			for i := range tail.Spans {
				sp := &tail.Spans[i]
				delete(announced, sp.ID)
				if err := enc.Encode(StreamRecord{Type: "span", Span: sp}); err != nil {
					return
				}
			}
		} else {
			for i := range tail.Events {
				if err := enc.Encode(StreamRecord{Type: "event", Event: &tail.Events[i]}); err != nil {
					return
				}
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if oneShot {
			return
		}
		if s.gate.Settled() && !fresh {
			// The run is over and the ring is drained: end the stream.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(streamPoll):
		}
	}
}
