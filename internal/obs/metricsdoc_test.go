package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// Registration call sites come in two shapes: the usual
// tel.Counter("family", ...) literal, and the tape drive's table of
// {"family", collector} pairs fed to CounterFunc in a loop.
var (
	reRegister  = regexp.MustCompile(`\.(?:Counter|CounterFunc|Gauge|GaugeFunc|Histogram|Summary)\(\s*"([a-z][a-z0-9_]*)"`)
	reTableRow  = regexp.MustCompile(`\{"(tape_[a-z0-9_]+)",`)
	reDocFamily = regexp.MustCompile("(?m)^\\| `([a-z][a-z0-9_]*)` \\|")
)

// registeredFamilies scans every non-test source file under internal/
// for metric registrations.
func registeredFamilies(t *testing.T) map[string]bool {
	t.Helper()
	root := filepath.Join("..", "..")
	fams := map[string]bool{telemetry.VirtualSecondsFamily: true}
	err := filepath.Walk(filepath.Join(root, "internal"), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range reRegister.FindAllSubmatch(src, -1) {
			fams[string(m[1])] = true
		}
		for _, m := range reTableRow.FindAllSubmatch(src, -1) {
			fams[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

// TestMetricsDocCurrent diffs METRICS.md against the code's metric
// registrations in both directions, so the doc cannot go stale: a new
// family must be documented, and a removed one must be deleted from
// the doc.
func TestMetricsDocCurrent(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range reDocFamily.FindAllSubmatch(doc, -1) {
		documented[string(m[1])] = true
	}
	registered := registeredFamilies(t)

	var missing, stale []string
	for f := range registered {
		if !documented[f] {
			missing = append(missing, f)
		}
	}
	for f := range documented {
		if !registered[f] {
			stale = append(stale, f)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("families registered in code but absent from METRICS.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("families documented in METRICS.md but not registered anywhere: %v", stale)
	}
	if len(registered) < 40 {
		t.Fatalf("scan found only %d families; the registration regexes look broken", len(registered))
	}
}
