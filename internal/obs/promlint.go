package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// A promtool-style lint of the Prometheus text exposition format,
// strict enough to catch the drifts that matter here: missing or
// repeated TYPE lines, malformed names, broken label escaping,
// duplicate series, negative counters, non-cumulative histogram
// buckets. CI runs it against a live E22 scrape; the ops drill runs it
// against every scrape the scripted operator takes.

// Sample is one parsed sample line.
type Sample struct {
	Name   string // full sample name (may carry _bucket/_sum/_count)
	Labels map[string]string
	Value  float64
	HasTS  bool
	TS     int64 // optional timestamp, milliseconds
}

// Exposition is one parsed scrape.
type Exposition struct {
	Types   map[string]string // family -> counter|gauge|histogram|summary|untyped
	Order   []string          // families in TYPE-line order
	Samples []Sample
}

// Family resolves the family a sample belongs to: its name, or the
// name minus a _bucket/_sum/_count suffix when the remainder is a
// declared histogram or summary family.
func (e *Exposition) Family(sampleName string) string {
	if _, ok := e.Types[sampleName]; ok {
		return sampleName
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sampleName, suf)
		if base == sampleName {
			continue
		}
		switch e.Types[base] {
		case "histogram", "summary":
			return base
		}
	}
	return sampleName
}

// Value returns the value of the sample with the given name whose
// labels include all of kv ("key", "value" pairs), and whether one
// exists. The scripted E22 operator reads drive health this way.
func (e *Exposition) Value(name string, kv ...string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// Matching returns every sample with the given name whose labels
// include all of kv.
func (e *Exposition) Matching(name string, kv ...string) []Sample {
	var out []Sample
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

func validNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func validNameChar(b byte) bool {
	return validNameStart(b) || (b >= '0' && b <= '9')
}

func validName(s string) bool {
	if s == "" || !validNameStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !validNameChar(s[i]) {
			return false
		}
	}
	return true
}

// ParseExposition parses a text-format scrape without judging it; use
// ValidateExposition for parse + lint in one call.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := e.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for family %s", lineNo, name)
				}
				e.Types[name] = kind
				e.Order = append(e.Order, name)
			}
			continue // HELP and free comments pass through
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && validNameChar(line[i]) {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name in %q", line)
	}
	if i < len(line) && line[i] == '{' {
		labels, rest, err := parseLabels(line[i:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		line = rest
	} else {
		line = line[i:]
	}
	fields := strings.Fields(line)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want 'value [timestamp]' after name, got %q", strings.TrimSpace(line))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
		s.HasTS, s.TS = true, ts
	}
	return s, nil
}

func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", tok)
	}
	return v, nil
}

// parseLabels consumes a {k="v",...} block (s starts at '{') and
// returns the labels plus the remainder of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i >= len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return labels, s[i+1:], nil
		}
		start := i
		for i < len(s) && validNameChar(s[i]) {
			i++
		}
		key := s[start:i]
		if !validName(key) || strings.Contains(key, ":") {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		if i >= len(s) || s[i] != '=' {
			return nil, "", fmt.Errorf("missing '=' after label %q", key)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated value for label %q", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", s[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
	}
}

// labelIdentity renders a canonical identity string for duplicate
// detection (sorted keys).
func labelIdentity(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == skip {
			continue
		}
		keys = append(keys, k)
	}
	// insertion sort: label sets are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// Validate lints a parsed scrape: every sample must belong to a
// declared family, families must not interleave, series must be
// unique, counters non-negative, histogram buckets cumulative with a
// +Inf bucket equal to _count.
func Validate(e *Exposition) error {
	seenFamily := make(map[string]bool)
	seenSeries := make(map[string]bool)
	lastFamily := ""
	for _, s := range e.Samples {
		fam := e.Family(s.Name)
		kind, ok := e.Types[fam]
		if !ok {
			return fmt.Errorf("sample %s has no TYPE line", s.Name)
		}
		if fam != lastFamily {
			if seenFamily[fam] {
				return fmt.Errorf("family %s interleaved (samples regrouped after other families)", fam)
			}
			seenFamily[fam] = true
			lastFamily = fam
		}
		id := s.Name + labelIdentity(s.Labels, "")
		if seenSeries[id] {
			return fmt.Errorf("duplicate series %s%s", s.Name, labelIdentity(s.Labels, ""))
		}
		seenSeries[id] = true
		if kind == "counter" && s.Value < 0 {
			return fmt.Errorf("counter %s is negative (%g)", s.Name, s.Value)
		}
		if kind == "histogram" && s.Name == fam {
			return fmt.Errorf("histogram family %s has a bare sample (want _bucket/_sum/_count)", fam)
		}
	}
	// Histogram shape: per series, buckets cumulative in le order,
	// +Inf present and equal to _count.
	type histState struct {
		last    float64
		inf     float64
		hasInf  bool
		count   float64
		hasCnt  bool
		bucketN int
	}
	hists := make(map[string]*histState)
	state := func(fam string, labels map[string]string) *histState {
		key := fam + "|" + labelIdentity(labels, "le")
		h, ok := hists[key]
		if !ok {
			h = &histState{}
			hists[key] = h
		}
		return h
	}
	for _, s := range e.Samples {
		fam := e.Family(s.Name)
		if e.Types[fam] != "histogram" {
			continue
		}
		h := state(fam, s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram bucket %s missing le label", s.Name)
			}
			if le == "+Inf" {
				h.inf, h.hasInf = s.Value, true
			} else if h.bucketN > 0 && s.Value < h.last {
				return fmt.Errorf("histogram %s buckets not cumulative at le=%q (%g < %g)", fam, le, s.Value, h.last)
			}
			if le != "+Inf" {
				h.last = s.Value
				h.bucketN++
			}
		case strings.HasSuffix(s.Name, "_count"):
			h.count, h.hasCnt = s.Value, true
		}
	}
	for key, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram series %s has no +Inf bucket", key)
		}
		if h.hasCnt && h.inf != h.count {
			return fmt.Errorf("histogram series %s: +Inf bucket %g != _count %g", key, h.inf, h.count)
		}
	}
	return nil
}

// ValidateExposition parses and lints a scrape in one call.
func ValidateExposition(r io.Reader) (*Exposition, error) {
	e, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	if err := Validate(e); err != nil {
		return e, err
	}
	return e, nil
}

// CheckMonotone compares two scrapes of the same target and reports
// the first counter series that went backwards — the cross-scrape half
// of "monotone counters" a single scrape cannot prove.
func CheckMonotone(prev, cur *Exposition) error {
	prevVals := make(map[string]float64)
	for _, s := range prev.Samples {
		if prev.Types[prev.Family(s.Name)] == "counter" {
			prevVals[s.Name+labelIdentity(s.Labels, "")] = s.Value
		}
	}
	for _, s := range cur.Samples {
		if cur.Types[cur.Family(s.Name)] != "counter" {
			continue
		}
		id := s.Name + labelIdentity(s.Labels, "")
		if pv, ok := prevVals[id]; ok && s.Value < pv {
			return fmt.Errorf("counter %s%s went backwards: %g -> %g",
				s.Name, labelIdentity(s.Labels, ""), pv, s.Value)
		}
	}
	return nil
}
