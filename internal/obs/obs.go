// Package obs is the live operator plane: an HTTP server exposing a
// running simulation's telemetry registry as a Prometheus text
// exposition (/metrics), its flight recorder as NDJSON streams
// (/events, /spans), a registry snapshot with a diff-since-cursor form
// (/snapshot), and a small control surface (/ops/...) wired to the
// tsm/faults hooks — drain a drive, quarantine a volume, retune the
// scrubber — so a scripted (or human) operator can detect a failure
// from scraped metrics and act on it while the campaign is still
// running. Pair it with Clock.SetPace so there is wall-clock time to
// observe in.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// SnapshotSchema identifies /snapshot JSON documents.
const SnapshotSchema = "archsim-snapshot/v1"

// Server serves one simulation's operator plane.
type Server struct {
	clock *simtime.Clock
	tel   *telemetry.Registry
	gate  *Gate
	act   Actions

	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener
	url  string
}

// New builds a server over the clock's registry. Zero-value Actions
// disable the corresponding /ops endpoints.
func New(clock *simtime.Clock, act Actions) *Server {
	s := &Server{
		clock: clock,
		tel:   telemetry.Of(clock),
		gate:  NewGate(clock),
		act:   act,
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/spans", s.handleSpans)
	s.mux.HandleFunc("/ops/drain-drive", s.handleDrainDrive)
	s.mux.HandleFunc("/ops/quarantine-volume", s.handleQuarantine)
	s.mux.HandleFunc("/ops/scrub-interval", s.handleScrubInterval)
	return s
}

// Gate exposes the server's simulation gate, for callers that need
// reads of their own (the E22 drill snapshots through it).
func (s *Server) Gate() *Gate { return s.gate }

// Start listens on addr (":0" for an ephemeral port) and serves in the
// background. It returns the base URL.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.url = "http://" + ln.Addr().String()
	s.http = &http.Server{Handler: s.mux}
	go func() { _ = s.http.Serve(ln) }()
	return s.url, nil
}

// URL reports the base URL ("" before Start).
func (s *Server) URL() string { return s.url }

// Settle marks the simulation finished (call after clock.Run returns):
// handlers switch from scheduler-injected reads to direct ones, and
// open streams drain and end.
func (s *Server) Settle() { s.gate.Settle() }

// Close stops listening and tears the server down.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `archsim operator plane
  GET  /metrics                   Prometheus text exposition (?ts=1 adds virtual-ms timestamps)
  GET  /snapshot                  registry snapshot JSON (?since_ns=N for points updated since)
  GET  /events                    NDJSON event stream (?follow=0 for a one-shot dump)
  GET  /spans                     NDJSON span stream (?follow=0 for the flight dump)
  POST /ops/drain-drive?drive=D   fail a drive out of service (&restore=1 to undrain)
  POST /ops/quarantine-volume?volume=V   exclude a volume from writes (&restore=1 to lift)
  POST /ops/scrub-interval?interval=5m   retune the scrub cadence
virtual time now: %s
`, time.Duration(s.clock.Now()))
}

func (s *Server) snapshot() *telemetry.Snapshot {
	var snap *telemetry.Snapshot
	s.gate.Do(func() { snap = s.tel.Snapshot() })
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WriteExposition(w, r.URL.Query().Get("ts") == "1")
}

// pointJSON mirrors telemetry.Point with JSON-encodable keys (a
// float64-keyed quantile map does not marshal).
type pointJSON struct {
	Name      string             `json:"name"`
	Kind      string             `json:"kind"`
	Labels    []telemetry.Label  `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Buckets   map[string]float64 `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Count     float64            `json:"count,omitempty"`
	UpdatedNs simtime.Duration   `json:"updated_ns,omitempty"`
}

type snapshotJSON struct {
	Schema   string           `json:"schema"`
	AtNs     simtime.Duration `json:"at_ns"`
	SinceNs  simtime.Duration `json:"since_ns,omitempty"`
	CursorNs simtime.Duration `json:"cursor_ns"`
	Points   []pointJSON      `json:"points"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var since simtime.Duration
	if q := r.URL.Query().Get("since_ns"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since_ns", http.StatusBadRequest)
			return
		}
		since = simtime.Duration(n)
	}
	snap := s.snapshot()
	doc := snapshotJSON{Schema: SnapshotSchema, AtNs: snap.At, SinceNs: since, CursorNs: snap.At}
	for _, p := range snap.Points {
		// The diff form keeps points updated after the cursor. Func-
		// collected series carry no update stamp (the subsystem owns
		// the state) and are always included.
		if since > 0 && p.Updated != 0 && p.Updated <= since {
			continue
		}
		pj := pointJSON{
			Name: p.Name, Kind: p.Kind, Labels: p.Labels, Value: p.Value,
			Sum: p.Sum, Count: p.Count, UpdatedNs: p.Updated,
		}
		if len(p.Buckets) > 0 {
			pj.Buckets = make(map[string]float64, len(p.Buckets))
			for d, c := range p.Buckets {
				pj.Buckets[strconv.Itoa(d)] = c
			}
		}
		if len(p.Quantiles) > 0 {
			pj.Quantiles = make(map[string]float64, len(p.Quantiles))
			for q, v := range p.Quantiles {
				pj.Quantiles[strconv.FormatFloat(q, 'g', -1, 64)] = v
			}
		}
		doc.Points = append(doc.Points, pj)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
