package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faults"
	"repro/internal/tsm"
)

// Actions wires the /ops control surface to a deployment's existing
// hooks. Every field is optional; a nil field turns its endpoint into
// a 404. The actions run in simulation context through the gate, so
// they are serialized with the actors exactly like a scheduled fault.
type Actions struct {
	// Faults drains/undrains drives: /ops/drain-drive applies a
	// KindFail (restore: KindRepair) event for drive:<name>, flowing
	// through the same dispatch as scheduled faults — telemetry cause
	// linkage and subsystem reactions (TSM drive reaping) included.
	Faults *faults.Registry
	// TSM quarantines volumes out of the write path.
	TSM *tsm.Server
	// Scrub retunes the scrubber's pass interval.
	Scrub *tsm.Scrubber
}

// opResult is the JSON reply of every /ops endpoint.
type opResult struct {
	OK      bool   `json:"ok"`
	Action  string `json:"action"`
	Target  string `json:"target,omitempty"`
	Restore bool   `json:"restore,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

func (s *Server) opReply(w http.ResponseWriter, res opResult) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// recordOp stamps the action into telemetry (inside the gate) so the
// flight recorder carries the operator's moves next to the faults they
// answer, and the registry counts them.
func (s *Server) recordOp(action, target string) {
	s.tel.Event("ops", "action", action, "component", "operator", "target", target)
	s.tel.Counter("obs_ops_actions_total", "action", action).Inc()
}

func (s *Server) handleDrainDrive(w http.ResponseWriter, r *http.Request) {
	if s.act.Faults == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	drive := r.URL.Query().Get("drive")
	if drive == "" {
		http.Error(w, "missing drive parameter", http.StatusBadRequest)
		return
	}
	restore := r.URL.Query().Get("restore") == "1"
	kind := faults.KindFail
	action := "drain-drive"
	if restore {
		kind = faults.KindRepair
		action = "undrain-drive"
	}
	s.gate.Do(func() {
		s.recordOp(action, drive)
		s.act.Faults.Apply(faults.Event{Component: faults.DriveComponent(drive), Kind: kind})
	})
	s.opReply(w, opResult{OK: true, Action: action, Target: drive, Restore: restore})
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	if s.act.TSM == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	volume := r.URL.Query().Get("volume")
	if volume == "" {
		http.Error(w, "missing volume parameter", http.StatusBadRequest)
		return
	}
	restore := r.URL.Query().Get("restore") == "1"
	action := "quarantine-volume"
	if restore {
		action = "unquarantine-volume"
	}
	s.gate.Do(func() {
		s.recordOp(action, volume)
		if restore {
			s.act.TSM.Unquarantine(volume)
		} else {
			s.act.TSM.Quarantine(volume)
		}
	})
	s.opReply(w, opResult{OK: true, Action: action, Target: volume, Restore: restore})
}

func (s *Server) handleScrubInterval(w http.ResponseWriter, r *http.Request) {
	if s.act.Scrub == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var d time.Duration
	switch {
	case r.URL.Query().Get("interval") != "":
		var err error
		d, err = time.ParseDuration(r.URL.Query().Get("interval"))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad interval: %v", err), http.StatusBadRequest)
			return
		}
	case r.URL.Query().Get("seconds") != "":
		secs, err := strconv.ParseFloat(r.URL.Query().Get("seconds"), 64)
		if err != nil {
			http.Error(w, "bad seconds", http.StatusBadRequest)
			return
		}
		d = time.Duration(secs * float64(time.Second))
	default:
		http.Error(w, "missing interval (Go duration) or seconds parameter", http.StatusBadRequest)
		return
	}
	if d <= 0 {
		http.Error(w, "interval must be positive", http.StatusBadRequest)
		return
	}
	s.gate.Do(func() {
		s.recordOp("scrub-interval", d.String())
		s.act.Scrub.SetInterval(d)
	})
	s.opReply(w, opResult{OK: true, Action: "scrub-interval", Detail: d.String()})
}
