package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// liveSim builds a paced simulation with a steady trickle of counter
// bumps, spans and events, serves it, and returns everything a test
// needs. The caller must call done() to wait for run completion.
func liveSim(t *testing.T, pace float64, virtualSpan time.Duration) (*Server, *simtime.Clock, *faults.Registry, func()) {
	t.Helper()
	clock := simtime.NewClock()
	if pace > 0 {
		clock.SetPace(pace)
	}
	tel := telemetry.Of(clock)
	reg := faults.New(clock, 1)
	clock.Go(func() {
		ctr := tel.Counter("obstest_ticks_total")
		for clock.Now() < virtualSpan {
			sp := tel.StartSpan("obstest.tick", "n", fmt.Sprint(int(ctr.Value())))
			clock.Sleep(virtualSpan / 50)
			ctr.Inc()
			tel.Event("obstest.beat", "component", "ticker")
			sp.End()
		}
	})
	srv := New(clock, Actions{Faults: reg})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ran := make(chan struct{})
	go func() {
		defer close(ran)
		clock.RunFor()
		srv.Settle()
	}()
	t.Cleanup(func() { srv.Close() })
	// done waits for the run to finish and the gate to settle; the
	// server keeps serving (settled) until test cleanup.
	done := func() { <-ran }
	return srv, clock, reg, done
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func post(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestServeLiveScrape: /metrics scraped mid-run parses under the
// validator, carries virtual time, and the settled scrape equals the
// post-hoc Snapshot().Text() byte for byte.
func TestServeLiveScrape(t *testing.T) {
	srv, clock, _, done := liveSim(t, 4.0, time.Second) // ~250ms real
	mid := get(t, srv.URL()+"/metrics")
	e, err := ValidateExposition(strings.NewReader(mid))
	if err != nil {
		t.Fatalf("mid-run scrape invalid: %v", err)
	}
	if v, ok := e.Value(telemetry.VirtualSecondsFamily); !ok || v < 0 || v > 1 {
		t.Fatalf("virtual seconds = %v ok=%v, want within [0,1]", v, ok)
	}
	if _, ok := e.Value("obstest_ticks_total"); !ok {
		t.Fatal("mid-run scrape missing the ticking counter")
	}

	// Monotone counters across scrapes.
	mid2 := get(t, srv.URL()+"/metrics")
	e2, err := ValidateExposition(strings.NewReader(mid2))
	if err != nil {
		t.Fatalf("second scrape invalid: %v", err)
	}
	if err := CheckMonotone(e, e2); err != nil {
		t.Fatalf("counters regressed between scrapes: %v", err)
	}

	done()
	final := get(t, srv.URL()+"/metrics")
	var want string
	srv.Gate().Do(func() { want = telemetry.Of(clock).Snapshot().Text() })
	if final != want {
		t.Fatalf("settled scrape differs from Snapshot().Text():\nscrape %d bytes, text %d bytes", len(final), len(want))
	}
	// Timestamped form also parses.
	if _, err := ValidateExposition(strings.NewReader(get(t, srv.URL()+"/metrics?ts=1"))); err != nil {
		t.Fatalf("timestamped scrape invalid: %v", err)
	}
}

// TestSnapshotDiffCursor: /snapshot?since_ns filters out points not
// updated since the cursor while keeping func-collected series.
func TestSnapshotDiffCursor(t *testing.T) {
	srv, _, _, done := liveSim(t, 0, 100*time.Millisecond)
	done()

	var full snapshotJSON
	if err := json.Unmarshal([]byte(get(t, srv.URL()+"/snapshot")), &full); err != nil {
		t.Fatal(err)
	}
	if full.Schema != SnapshotSchema || len(full.Points) == 0 {
		t.Fatalf("full snapshot: schema %q, %d points", full.Schema, len(full.Points))
	}
	// A cursor at the end excludes the tick counter (last updated
	// before the final instant).
	var diff snapshotJSON
	url := fmt.Sprintf("%s/snapshot?since_ns=%d", srv.URL(), full.CursorNs)
	if err := json.Unmarshal([]byte(get(t, url)), &diff); err != nil {
		t.Fatal(err)
	}
	for _, p := range diff.Points {
		if p.Name == "obstest_ticks_total" {
			t.Fatalf("stale point survived the cursor: %+v", p)
		}
	}
	if len(diff.Points) >= len(full.Points) {
		t.Fatalf("diff form no smaller: %d vs %d points", len(diff.Points), len(full.Points))
	}
}

// TestOpsDrainDrive: the control surface applies a fault-registry
// event in simulation context and telemetry records the operator move.
func TestOpsDrainDrive(t *testing.T) {
	srv, clock, reg, done := liveSim(t, 2.0, 200*time.Millisecond)
	var mu sync.Mutex
	var applied []faults.Event
	reg.OnApply(func(ev faults.Event) {
		mu.Lock()
		applied = append(applied, ev)
		mu.Unlock()
	})

	body := post(t, srv.URL()+"/ops/drain-drive?drive=drive03")
	var res opResult
	if err := json.Unmarshal([]byte(body), &res); err != nil || !res.OK {
		t.Fatalf("drain reply: %s (%v)", body, err)
	}
	done()

	mu.Lock()
	defer mu.Unlock()
	if len(applied) != 1 || applied[0].Component != "drive:drive03" || applied[0].Kind != faults.KindFail {
		t.Fatalf("applied events: %+v", applied)
	}
	var dump *telemetry.FlightDump
	srv.Gate().Do(func() { dump = telemetry.Of(clock).FlightDump() })
	found := false
	for _, ev := range dump.Events {
		if ev.Name == "ops" && ev.Attr("action") == "drain-drive" && ev.Attr("target") == "drive03" {
			found = true
		}
	}
	if !found {
		t.Fatal("operator action not in the flight recorder")
	}
}

// TestEventStreamFollow: /events streams NDJSON records live and ends
// when the run settles.
func TestEventStreamFollow(t *testing.T) {
	srv, _, _, done := liveSim(t, 4.0, 400*time.Millisecond) // ~100ms real
	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var beats int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if rec.Type == "event" && rec.Event.Name == "obstest.beat" {
			beats++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if beats < 50 {
		t.Fatalf("streamed %d beats, want all 50", beats)
	}
	done()
}

// TestSpanStreamAndDump: /spans?follow=0 returns the flight dump;
// the follow form announces opens and closes.
func TestSpanStreamAndDump(t *testing.T) {
	srv, _, _, done := liveSim(t, 0, 50*time.Millisecond)
	done()

	var dump telemetry.FlightDump
	if err := json.Unmarshal([]byte(get(t, srv.URL()+"/spans?follow=0")), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Schema != telemetry.FlightSchema || len(dump.Spans) == 0 {
		t.Fatalf("span dump: schema %q, %d spans", dump.Schema, len(dump.Spans))
	}

	// Follow on a settled server: one drain pass, then EOF.
	resp, err := http.Get(srv.URL() + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var closed int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type == "span" && rec.Span.Status == telemetry.StatusOK {
			closed++
		}
	}
	if closed == 0 {
		t.Fatal("no closed spans streamed")
	}
}

// TestGateConcurrentSnapshot hammers the gate with concurrent
// snapshots (and FlightSince reads) from several goroutines while the
// simulation mutates every series — the -race proof that the gate
// serializes HTTP reads against actor writes, live and settled.
func TestGateConcurrentSnapshot(t *testing.T) {
	clock := simtime.NewClock()
	clock.SetPace(500 * float64(time.Millisecond) / float64(time.Second) * 10) // mild throttle so readers overlap the run
	tel := telemetry.Of(clock)
	clock.Go(func() {
		ctr := tel.Counter("gate_race_total")
		for i := 0; i < 2000; i++ {
			ctr.Inc()
			sp := tel.StartSpan("gate.race")
			clock.Sleep(time.Millisecond)
			sp.End()
		}
	})
	gate := NewGate(clock)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				gate.Do(func() {
					snap := tel.Snapshot()
					_ = snap.Total("gate_race_total")
					tail := tel.FlightSince(cursor)
					cursor = tail.Cursor
				})
			}
		}()
	}
	clock.RunFor()
	gate.Settle()
	// Settled reads race only each other now; let them spin once more.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	var total float64
	gate.Do(func() { total = tel.Snapshot().Total("gate_race_total") })
	if total != 2000 {
		t.Fatalf("final counter %v, want 2000", total)
	}
}
