package obs

import (
	"sync"

	"repro/internal/simtime"
)

// The registry, the flight ring, and every subsystem the func-collected
// series read are mutated exclusively from simulation-actor context —
// the clock's single-actor execution serializes them with no locking
// (see the telemetry package doc). An HTTP handler runs on its own OS
// goroutine, so it must not touch any of that directly. The Gate is the
// bridge: while the simulation runs, it injects the read (or operator
// action) as an inline scheduler callback at the current virtual
// instant — executed on the scheduler goroutine, serialized with every
// actor, with happens-before edges through the clock's own mutex — and
// blocks the handler until it has run. Pacing (Clock.SetPace) bounds
// how long that takes: the scheduler re-checks its queue every pacing
// slice, so a scrape lands within a few milliseconds of real time even
// mid-way through a long virtual gap.
//
// After the run ends no actor exists anymore; Settle flips the gate to
// run functions directly on the caller, serialized by a plain mutex.

// Gate executes functions in simulation context (live) or inline
// (settled).
type Gate struct {
	clock *simtime.Clock
	mu    sync.Mutex // serializes direct execution after Settle
	done  chan struct{}
	once  sync.Once
}

// NewGate builds a gate over the clock. Call Settle once clock.Run has
// returned.
func NewGate(clock *simtime.Clock) *Gate {
	return &Gate{clock: clock, done: make(chan struct{})}
}

// Settle marks the simulation finished: Do now runs functions directly
// (no actors exist to race with). Must be called only after clock.Run
// has returned; safe to call more than once.
func (g *Gate) Settle() { g.once.Do(func() { close(g.done) }) }

// Settled reports whether the simulation has finished.
func (g *Gate) Settled() bool {
	select {
	case <-g.done:
		return true
	default:
		return false
	}
}

// Do runs fn in simulation context and returns after it has executed
// exactly once. Live: fn is injected as a scheduler callback at the
// current virtual instant (fn must follow the Callback contract —
// never park). Settled: fn runs on the calling goroutine under the
// gate's mutex.
func (g *Gate) Do(fn func()) {
	ran := make(chan struct{})
	g.clock.Callback(g.clock.Now(), func() {
		fn()
		close(ran)
	})
	select {
	case <-ran:
	case <-g.done:
		// The scheduler exited. If it drained our callback on its way
		// out we are done; otherwise the callback is orphaned in the
		// queue and fn runs here — no actor exists to race with, and
		// g.mu serializes concurrent settled handlers.
		select {
		case <-ran:
		default:
			g.mu.Lock()
			fn()
			g.mu.Unlock()
		}
	}
}
