package obs

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, text string) *Exposition {
	t.Helper()
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return e
}

func TestParseExposition(t *testing.T) {
	e := mustParse(t, `# archsim registry snapshot at 1s virtual
# TYPE pftool_copied_bytes_total counter
pftool_copied_bytes_total{pool="fast"} 1.5e+09 1000
# TYPE tape_drive_down gauge
tape_drive_down{drive="drive00"} 0
tape_drive_down{drive="drive01"} 1
`)
	if e.Types["pftool_copied_bytes_total"] != "counter" {
		t.Fatalf("types: %v", e.Types)
	}
	if len(e.Samples) != 3 {
		t.Fatalf("samples: %d", len(e.Samples))
	}
	if v, ok := e.Value("tape_drive_down", "drive", "drive01"); !ok || v != 1 {
		t.Fatalf("Value lookup: %v %v", v, ok)
	}
	s := e.Samples[0]
	if !s.HasTS || s.TS != 1000 || s.Value != 1.5e9 || s.Labels["pool"] != "fast" {
		t.Fatalf("sample 0: %+v", s)
	}
}

func TestParseLabelEscaping(t *testing.T) {
	e := mustParse(t, `# TYPE f gauge
f{path="a\\b\"c\nd"} 1
`)
	want := "a\\b\"c\nd"
	if got := e.Samples[0].Labels["path"]; got != want {
		t.Fatalf("unescaped label = %q, want %q", got, want)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the error ("" = parse error expected)
	}{
		{"no type line", "f 1\n", "no TYPE line"},
		{"negative counter", "# TYPE f counter\nf -1\n", "negative"},
		{"duplicate series", "# TYPE f gauge\nf{a=\"1\"} 1\nf{a=\"1\"} 2\n", "duplicate series"},
		{"interleaved families", "# TYPE f gauge\n# TYPE g gauge\nf 1\ng 1\nf 2\n", "interleaved"},
		{"bad escape", "# TYPE f gauge\nf{a=\"\\x\"} 1\n", ""},
		{"unterminated labels", "# TYPE f gauge\nf{a=\"1\" 1\n", ""},
		{"duplicate type", "# TYPE f gauge\n# TYPE f counter\nf 1\n", ""},
		{"bad name", "# TYPE 9f gauge\n", ""},
		{"histogram no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"histogram not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "cumulative"},
		{"inf count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n", "_count"},
	}
	for _, tc := range cases {
		_, err := ValidateExposition(strings.NewReader(tc.text))
		if err == nil {
			t.Fatalf("%s: validated clean, want error", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	text := `# archsim registry snapshot at 2s virtual
# TYPE archsim_virtual_seconds gauge
archsim_virtual_seconds 2
# TYPE h histogram
h_bucket{le="1e+01"} 2
h_bucket{le="1e+02"} 5
h_bucket{le="+Inf"} 5
h_sum 123.4
h_count 5
# TYPE s summary
s{quantile="0.5"} 10
s{quantile="0.99"} 90
s_sum 100
s_count 7
# TYPE c counter
c{op="read"} 0
c{op="write"} 12
`
	if _, err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("well-formed scrape rejected: %v", err)
	}
}

func TestCheckMonotone(t *testing.T) {
	prev := mustParse(t, "# TYPE c counter\nc{x=\"1\"} 5\n")
	curOK := mustParse(t, "# TYPE c counter\nc{x=\"1\"} 7\n")
	curBad := mustParse(t, "# TYPE c counter\nc{x=\"1\"} 3\n")
	if err := CheckMonotone(prev, curOK); err != nil {
		t.Fatalf("monotone pair flagged: %v", err)
	}
	if err := CheckMonotone(prev, curBad); err == nil {
		t.Fatal("regressing counter not flagged")
	}
}
