package pfs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/synthetic"
	"repro/internal/vfs"
)

// sim runs fn as the sole actor on a fresh GPFS-config FS and returns
// the elapsed virtual time.
func sim(t *testing.T, fn func(c *simtime.Clock, fs *FS)) time.Duration {
	t.Helper()
	c := simtime.NewClock()
	fs := New(c, GPFSConfig("gpfs"))
	c.Go(func() { fn(c, fs) })
	end, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestWriteReadRoundTrip(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		content := synthetic.NewUniform(1, 1e6)
		fs.MkdirAll("/data")
		if err := fs.WriteFile("/data/f", content); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadContent("/data/f")
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(content) {
			t.Error("content mismatch")
		}
	})
}

func TestPoolAccounting(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fast, _ := fs.Pool("fast")
		slow, _ := fs.Pool("slow")
		fs.WriteFile("/a", synthetic.NewUniform(1, 1000))
		fs.WriteFileIn("/b", synthetic.NewUniform(2, 500), "slow")
		if fast.Used() != 1000 {
			t.Errorf("fast.Used = %d, want 1000", fast.Used())
		}
		if slow.Used() != 500 {
			t.Errorf("slow.Used = %d, want 500", slow.Used())
		}
		fs.Remove("/a")
		if fast.Used() != 0 {
			t.Errorf("fast.Used after remove = %d, want 0", fast.Used())
		}
	})
}

func TestOverwriteAdjustsAccounting(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fast, _ := fs.Pool("fast")
		fs.WriteFile("/f", synthetic.NewUniform(1, 1000))
		fs.WriteFile("/f", synthetic.NewUniform(2, 300))
		if fast.Used() != 300 {
			t.Errorf("fast.Used = %d, want 300", fast.Used())
		}
	})
}

func TestCapacityEnforced(t *testing.T) {
	c := simtime.NewClock()
	cfg := GPFSConfig("tiny")
	cfg.Pools = []PoolSpec{{Name: "fast", Capacity: 1000, Rate: 1e9}}
	cfg.DefaultPool = "fast"
	fs := New(c, cfg)
	c.Go(func() {
		if err := fs.WriteFile("/a", synthetic.NewUniform(1, 800)); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/b", synthetic.NewUniform(2, 300)); !errors.Is(err, ErrNoSpace) {
			t.Errorf("err = %v, want ErrNoSpace", err)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownPool(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		if err := fs.WriteFileIn("/f", synthetic.NewUniform(1, 1), "nope"); !errors.Is(err, ErrNoPool) {
			t.Errorf("err = %v, want ErrNoPool", err)
		}
		if _, err := fs.Pool("nope"); !errors.Is(err, ErrNoPool) {
			t.Errorf("Pool err = %v, want ErrNoPool", err)
		}
	})
}

func TestMigrationLifecycle(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fast, _ := fs.Pool("fast")
		content := synthetic.NewUniform(1, 5000)
		fs.WriteFile("/f", content)
		if st, _ := fs.State("/f"); st != Resident {
			t.Errorf("state = %v, want resident", st)
		}
		if err := fs.SetPremigrated("/f"); err != nil {
			t.Fatal(err)
		}
		if st, _ := fs.State("/f"); st != Premigrated {
			t.Errorf("state = %v, want premigrated", st)
		}
		if fast.Used() != 5000 {
			t.Errorf("premigrated should still hold disk space, Used = %d", fast.Used())
		}
		if err := fs.Punch("/f"); err != nil {
			t.Fatal(err)
		}
		if st, _ := fs.State("/f"); st != Migrated {
			t.Errorf("state = %v, want migrated", st)
		}
		if fast.Used() != 0 {
			t.Errorf("punch should free disk space, Used = %d", fast.Used())
		}
		// Size stays visible on the stub.
		info, _ := fs.Stat("/f")
		if info.Size != 5000 {
			t.Errorf("stub Size = %d, want 5000", info.Size)
		}
		// Reads are refused offline.
		if _, err := fs.ReadContent("/f"); !errors.Is(err, ErrOffline) {
			t.Errorf("read of stub: err = %v, want ErrOffline", err)
		}
		// Restore brings it back.
		if err := fs.Restore("/f", true); err != nil {
			t.Fatal(err)
		}
		if st, _ := fs.State("/f"); st != Premigrated {
			t.Errorf("state after recall = %v, want premigrated", st)
		}
		got, err := fs.ReadContent("/f")
		if err != nil || !got.Equal(content) {
			t.Errorf("content after recall mismatch: %v", err)
		}
	})
}

func TestPunchRequiresPremigrated(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fs.WriteFile("/f", synthetic.NewUniform(1, 10))
		if err := fs.Punch("/f"); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v, want ErrBadState", err)
		}
	})
}

func TestWriteDirtiesPremigrated(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fs.WriteFile("/f", synthetic.NewUniform(1, 100))
		fs.SetPremigrated("/f")
		fs.WriteAt("/f", 0, synthetic.NewUniform(2, 10))
		if st, _ := fs.State("/f"); st != Resident {
			t.Errorf("state after write = %v, want resident (backend copy stale)", st)
		}
	})
}

func TestMigratedFileRejectsWrites(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fs.WriteFile("/f", synthetic.NewUniform(1, 100))
		fs.SetPremigrated("/f")
		fs.Punch("/f")
		if err := fs.WriteAt("/f", 0, synthetic.NewUniform(2, 10)); !errors.Is(err, ErrOffline) {
			t.Errorf("WriteAt err = %v, want ErrOffline", err)
		}
		if err := fs.Truncate("/f", 10); !errors.Is(err, ErrOffline) {
			t.Errorf("Truncate err = %v, want ErrOffline", err)
		}
	})
}

func TestRemoveMigratedStubDoesNotTouchPool(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fast, _ := fs.Pool("fast")
		fs.WriteFile("/f", synthetic.NewUniform(1, 100))
		fs.SetPremigrated("/f")
		fs.Punch("/f")
		used := fast.Used()
		fs.Remove("/f")
		if fast.Used() != used {
			t.Errorf("removing a stub changed pool usage: %d -> %d", used, fast.Used())
		}
	})
}

func TestMetaOpsChargeTime(t *testing.T) {
	end := sim(t, func(c *simtime.Clock, fs *FS) {
		fs.WriteFile("/f", synthetic.NewUniform(1, 1))
		for i := 0; i < 100; i++ {
			fs.Stat("/f")
		}
	})
	if end == 0 {
		t.Error("metadata operations charged no time")
	}
	cfg := GPFSConfig("gpfs")
	if end < 50*cfg.MetaOpCost {
		t.Errorf("end = %v, want at least 50 op costs", end)
	}
}

func TestScanCalibratedRate(t *testing.T) {
	// 1e6 inodes should scan in ~10 virtual minutes (GPFS calibration).
	c := simtime.NewClock()
	cfg := GPFSConfig("gpfs")
	cfg.MetaOpCost = 0 // isolate scan cost
	fs := New(c, cfg)
	c.Go(func() {
		const dirs = 100
		const perDir = 100
		for d := 0; d < dirs; d++ {
			dir := "/d" + string(rune('a'+d%26)) + "/" + itoa(d)
			fs.MkdirAll(dir)
			specs := make([]FileSpec, perDir)
			for f := 0; f < perDir; f++ {
				specs[f] = FileSpec{Path: dir + "/" + itoa(f), Content: synthetic.NewUniform(uint64(d*perDir+f), 10)}
			}
			fs.WriteFiles(specs)
		}
		n := fs.NumInodes()
		start := c.Now()
		count := 0
		fs.Scan(func(Info) error { count++; return nil })
		elapsed := c.Now() - start
		if count != n {
			t.Errorf("scan visited %d inodes, want %d", count, n)
		}
		perInode := elapsed / time.Duration(n)
		if perInode != cfg.ScanPerInode {
			t.Errorf("scan cost %v/inode, want %v", perInode, cfg.ScanPerInode)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestWriteFilesBulkCheaperThanLoop(t *testing.T) {
	mk := func(bulk bool) time.Duration {
		c := simtime.NewClock()
		fs := New(c, GPFSConfig("gpfs"))
		c.Go(func() {
			fs.MkdirAll("/d")
			if bulk {
				specs := make([]FileSpec, 1000)
				for i := range specs {
					specs[i] = FileSpec{Path: "/d/f" + itoa(i), Content: synthetic.NewUniform(uint64(i), 1)}
				}
				fs.WriteFiles(specs)
			} else {
				for i := 0; i < 1000; i++ {
					fs.WriteFile("/d/f"+itoa(i), synthetic.NewUniform(uint64(i), 1))
				}
			}
		})
		end, err := c.Run()
		if err != nil {
			panic(err)
		}
		return end
	}
	if b, l := mk(true), mk(false); b > l {
		t.Errorf("bulk (%v) should not be slower than loop (%v)", b, l)
	}
}

func TestRenamePreservesID(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fs.WriteFile("/a", synthetic.NewUniform(1, 10))
		before, _ := fs.Stat("/a")
		fs.Rename("/a", "/b")
		after, _ := fs.Stat("/b")
		if before.ID != after.ID {
			t.Error("rename changed file ID")
		}
	})
}

func TestRenameReplacingReleasesSpace(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fast, _ := fs.Pool("fast")
		fs.WriteFile("/a", synthetic.NewUniform(1, 100))
		fs.WriteFile("/b", synthetic.NewUniform(2, 900))
		fs.Rename("/a", "/b")
		if fast.Used() != 100 {
			t.Errorf("Used = %d, want 100 (replaced file released)", fast.Used())
		}
	})
}

func TestRemoveAllReleasesSpace(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fast, _ := fs.Pool("fast")
		fs.MkdirAll("/d/e")
		fs.WriteFile("/d/a", synthetic.NewUniform(1, 100))
		fs.WriteFile("/d/e/b", synthetic.NewUniform(2, 200))
		fs.RemoveAll("/d")
		if fast.Used() != 0 {
			t.Errorf("Used = %d, want 0", fast.Used())
		}
		if fs.NumInodes() != 1 {
			t.Errorf("NumInodes = %d, want 1", fs.NumInodes())
		}
	})
}

func TestStatIDForSyncDeleter(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fs.WriteFile("/f", synthetic.NewUniform(1, 10))
		info, _ := fs.Stat("/f")
		got, err := fs.StatID(info.ID)
		if err != nil || got.Size != 10 {
			t.Errorf("StatID = %+v, %v", got, err)
		}
		if _, err := fs.StatID(vfs.FileID(9999)); err == nil {
			t.Error("StatID of missing ID should fail")
		}
	})
}

func TestPoolLinkRates(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *FS) {
		fast, _ := fs.Pool("fast")
		start := c.Now()
		fast.Link().Transfer(3e9) // 1s at 3 GB/s
		if got := c.Now() - start; got < 900*time.Millisecond || got > 1100*time.Millisecond {
			t.Errorf("3 GB over fast pool took %v, want ~1s", got)
		}
	})
}
