// Package pfs simulates a parallel file system in the mold of GPFS (the
// paper's archive tier) and Panasas (its scratch tier): a vfs namespace
// plus storage pools with capacity and aggregate-bandwidth accounting,
// metadata operation costs, a fast batched inode scan (the engine under
// GPFS ILM policies), and DMAPI-style migration state per file
// (resident / premigrated / migrated stub), which is what the HSM layer
// punches and recalls.
//
// pfs deliberately does NOT charge data-transfer time inside its
// namespace operations: data movement belongs to the movers (PFTool
// workers, HSM migrators), which resolve routes across the full path —
// source pool, trunk, NIC, destination pool — through the shared
// data-path fabric. pfs wires each pool's aggregate bandwidth into that
// fabric as a named link ("<fs>/<pool>") between the pool endpoint
// ("<fs>:<pool>") and the hubs named in Config.Attach.
package pfs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/synthetic"
	"repro/internal/vfs"
)

// Errors specific to the pfs layer (namespace errors come from vfs).
var (
	ErrOffline  = errors.New("pfs: file data is migrated offline")
	ErrNoSpace  = errors.New("pfs: storage pool out of space")
	ErrNoPool   = errors.New("pfs: no such storage pool")
	ErrBadState = errors.New("pfs: invalid migration state transition")
)

// MigState is the DMAPI-style per-file data residency state.
type MigState int

// Residency states.
const (
	Resident    MigState = iota // data on disk only
	Premigrated                 // data on disk and on the backend
	Migrated                    // stub: data on the backend only
)

func (s MigState) String() string {
	switch s {
	case Resident:
		return "resident"
	case Premigrated:
		return "premigrated"
	case Migrated:
		return "migrated"
	}
	return fmt.Sprintf("MigState(%d)", int(s))
}

// PoolSpec describes one storage pool.
type PoolSpec struct {
	Name     string
	Capacity int64   // bytes
	Rate     float64 // aggregate bandwidth, bytes per second
	// StreamRate caps a single client stream (one file descriptor's
	// worth of striped I/O): an aggregate pool of many NSD servers
	// serves many streams at Rate total, but one stream only reaches
	// the few NSDs its stripes land on. Zero means uncapped.
	StreamRate float64
}

// Config describes a file system instance.
type Config struct {
	Name         string
	Pools        []PoolSpec
	DefaultPool  string
	MetaOpCost   time.Duration // per metadata operation
	MetaParallel int           // concurrent metadata operations served
	ScanPerInode time.Duration // policy-scan cost per inode
	ScanParallel int           // scan pipeline width
	// Attach names the fabric hubs every pool link connects to. Empty
	// means {fabric.Clients}: the file system is mounted by the FTA
	// nodes directly (the archive tier). A scratch tier on the far side
	// of the trunk attaches at fabric.Compute instead.
	Attach []string
}

// GPFSConfig returns the archive-tier file system used in the paper's
// deployment: a 100 TB fast FC pool plus a slow pool for small files,
// with metadata rates calibrated to "one million inodes in ten minutes"
// for policy scans.
func GPFSConfig(name string) Config {
	return Config{
		Name: name,
		Pools: []PoolSpec{
			{Name: "fast", Capacity: 100e12, Rate: 3.0e9, StreamRate: 800e6},
			{Name: "slow", Capacity: 100e12, Rate: 0.8e9, StreamRate: 300e6},
		},
		DefaultPool:  "fast",
		MetaOpCost:   200 * time.Microsecond,
		MetaParallel: 64,
		ScanPerInode: 600 * time.Microsecond, // 1e6 inodes / 10 min
		ScanParallel: 1,
	}
}

// PanasasConfig returns the scratch-tier file system: one large fast
// pool; the supercomputer's scratch is never the bottleneck in the
// archive path.
func PanasasConfig(name string) Config {
	return Config{
		Name: name,
		Pools: []PoolSpec{
			{Name: "scratch", Capacity: 2000e12, Rate: 5.0e9, StreamRate: 800e6},
		},
		DefaultPool:  "scratch",
		MetaOpCost:   150 * time.Microsecond,
		MetaParallel: 64,
		ScanPerInode: 600 * time.Microsecond,
		ScanParallel: 1,
	}
}

// Pool is a live storage pool.
type Pool struct {
	Spec     PoolSpec
	link     *fabric.Link
	endpoint string
	used     int64
}

// Used reports bytes resident in the pool.
func (p *Pool) Used() int64 { return p.used }

// Free reports remaining capacity.
func (p *Pool) Free() int64 { return p.Spec.Capacity - p.used }

// Link returns the pool's fabric link (the disk-array hop of any route
// that starts or ends at this pool).
func (p *Pool) Link() *fabric.Link { return p.link }

// Endpoint returns the pool's fabric endpoint name ("<fs>:<pool>"),
// usable as a source or destination in fabric.Route.
func (p *Pool) Endpoint() string { return p.endpoint }

// StreamRate reports the single-stream ceiling (0 = uncapped).
func (p *Pool) StreamRate() float64 { return p.Spec.StreamRate }

// Info combines namespace stat with pfs residency data.
type Info struct {
	vfs.Info
	Pool  string
	State MigState
}

type fileMeta struct {
	pool  string
	state MigState
}

// FS is one simulated parallel file system.
type FS struct {
	clock   *simtime.Clock
	fab     *fabric.Fabric
	cfg     Config
	ns      *vfs.FS
	pools   map[string]*Pool
	order   []string
	meta    []*fileMeta // index = vfs.FileID (dense, never reused)
	metaPot []fileMeta  // chunked arena behind meta (stable pointers)
	metaRes *simtime.Resource
}

// New creates a file system from cfg on the given clock.
func New(clock *simtime.Clock, cfg Config) *FS {
	if cfg.MetaParallel <= 0 {
		cfg.MetaParallel = 1
	}
	if cfg.ScanParallel <= 0 {
		cfg.ScanParallel = 1
	}
	fs := &FS{
		clock:   clock,
		fab:     fabric.Of(clock),
		cfg:     cfg,
		ns:      vfs.New(cfg.Name, func() time.Duration { return clock.Now() }),
		pools:   make(map[string]*Pool),
		meta:    make([]*fileMeta, 1), // index 0 unused
		metaRes: simtime.NewResource(clock, cfg.MetaParallel),
	}
	attach := cfg.Attach
	if len(attach) == 0 {
		attach = []string{fabric.Clients}
	}
	for _, ps := range cfg.Pools {
		ep := cfg.Name + ":" + ps.Name
		link := fs.fab.AddLink(cfg.Name+"/"+ps.Name, ps.Rate, ep, attach[0])
		for _, hub := range attach[1:] {
			fs.fab.AttachLink(link, ep, hub)
		}
		fs.pools[ps.Name] = &Pool{
			Spec:     ps,
			link:     link,
			endpoint: ep,
		}
		fs.order = append(fs.order, ps.Name)
	}
	if _, ok := fs.pools[cfg.DefaultPool]; !ok {
		panic("pfs: default pool not in pool list")
	}
	return fs
}

// Name reports the file system's label.
func (fs *FS) Name() string { return fs.cfg.Name }

// Clock returns the simulation clock the FS runs on.
func (fs *FS) Clock() *simtime.Clock { return fs.clock }

// Fabric returns the shared data-path fabric the pools are wired into.
func (fs *FS) Fabric() *fabric.Fabric { return fs.fab }

// Pool returns the named pool.
func (fs *FS) Pool(name string) (*Pool, error) {
	p, ok := fs.pools[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoPool, name)
	}
	return p, nil
}

// Pools returns all pools in declaration order.
func (fs *FS) Pools() []*Pool {
	out := make([]*Pool, 0, len(fs.order))
	for _, n := range fs.order {
		out = append(out, fs.pools[n])
	}
	return out
}

// DefaultPool returns the placement default.
func (fs *FS) DefaultPool() *Pool { return fs.pools[fs.cfg.DefaultPool] }

// newMeta allocates a residency record from a chunked arena: one heap
// allocation per 1024 files instead of one per file.
func (fs *FS) newMeta(pool string, state MigState) *fileMeta {
	if len(fs.metaPot) == 0 {
		fs.metaPot = make([]fileMeta, 1024)
	}
	m := &fs.metaPot[0]
	fs.metaPot = fs.metaPot[1:]
	m.pool, m.state = pool, state
	return m
}

// metaOf returns the residency record for id, or nil if none.
func (fs *FS) metaOf(id vfs.FileID) *fileMeta {
	if int(id) < len(fs.meta) {
		return fs.meta[id]
	}
	return nil
}

// setMeta installs the residency record for id, growing the dense table
// as file IDs are allocated.
func (fs *FS) setMeta(id vfs.FileID, m *fileMeta) {
	for int(id) >= len(fs.meta) {
		fs.meta = append(fs.meta, nil)
	}
	fs.meta[id] = m
}

// delMeta drops the residency record for id.
func (fs *FS) delMeta(id vfs.FileID) {
	if int(id) < len(fs.meta) {
		fs.meta[id] = nil
	}
}

// chargeMeta bills one metadata operation against the metadata service.
func (fs *FS) chargeMeta(ops int) {
	if fs.cfg.MetaOpCost <= 0 || ops <= 0 {
		return
	}
	fs.metaRes.Acquire(1)
	fs.clock.Sleep(time.Duration(ops) * fs.cfg.MetaOpCost)
	fs.metaRes.Release(1)
}

// MkdirAll creates a directory chain (one metadata operation).
func (fs *FS) MkdirAll(p string) error {
	fs.chargeMeta(1)
	return fs.ns.MkdirAll(p)
}

// WriteFile creates or replaces a file in the default pool.
func (fs *FS) WriteFile(p string, content synthetic.Content) error {
	return fs.WriteFileIn(p, content, fs.cfg.DefaultPool)
}

// WriteFileIn creates or replaces a file, placing its data in the named
// pool. It charges metadata cost but not data-transfer time (see the
// package comment). Capacity is enforced.
func (fs *FS) WriteFileIn(p string, content synthetic.Content, pool string) error {
	fs.chargeMeta(1)
	return fs.writeFileQuiet(p, content, pool)
}

// writeFileQuiet is WriteFileIn without the metadata charge, used by
// bulk operations that bill in one batch.
func (fs *FS) writeFileQuiet(p string, content synthetic.Content, pool string) error {
	pl, ok := fs.pools[pool]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPool, pool)
	}
	var oldSize int64
	var oldMeta *fileMeta
	id, err := fs.ns.WriteFileReserve(p, content, func(prevID vfs.FileID, prevSize int64) error {
		if prevID != 0 {
			oldMeta = fs.metaOf(prevID)
			if oldMeta != nil && oldMeta.state != Migrated {
				oldSize = prevSize
			}
		}
		need := content.Len() - oldSize
		if oldMeta != nil && oldMeta.pool != pool {
			need = content.Len() // moving pools: old accounting released below
		}
		if need > pl.Free() {
			return fmt.Errorf("%w: pool %s needs %d, free %d", ErrNoSpace, pool, need, pl.Free())
		}
		return nil
	})
	if err != nil {
		return err
	}
	if oldMeta != nil {
		if oldMeta.state != Migrated {
			fs.pools[oldMeta.pool].used -= oldSize
		}
	}
	pl.used += content.Len()
	fs.setMeta(id, fs.newMeta(pool, Resident))
	return nil
}

// FileSpec names one file for bulk creation.
type FileSpec struct {
	Path    string
	Content synthetic.Content
	Pool    string // empty = default pool
}

// WriteFiles creates many files, billing metadata cost as one batch —
// the bulk path PFTool workers use when landing a batch of small files.
func (fs *FS) WriteFiles(specs []FileSpec) error {
	fs.chargeMeta(len(specs))
	for _, s := range specs {
		pool := s.Pool
		if pool == "" {
			pool = fs.cfg.DefaultPool
		}
		if err := fs.writeFileQuiet(s.Path, s.Content, pool); err != nil {
			return fmt.Errorf("writing %s: %w", s.Path, err)
		}
	}
	return nil
}

// ReadContent returns the file's data. Migrated stubs return ErrOffline;
// callers must recall through the HSM first (or use a recall-aware
// wrapper), exactly like a DMAPI read event.
func (fs *FS) ReadContent(p string) (synthetic.Content, error) {
	fs.chargeMeta(1)
	info, err := fs.ns.Stat(p)
	if err != nil {
		return synthetic.Content{}, err
	}
	if info.IsDir() {
		return synthetic.Content{}, fmt.Errorf("%w: %s", vfs.ErrIsDir, p)
	}
	if m := fs.metaOf(info.ID); m != nil && m.state == Migrated {
		return synthetic.Content{}, fmt.Errorf("%w: %s", ErrOffline, p)
	}
	return fs.ns.ReadFile(p)
}

// WriteAt writes into an existing resident file (append or overwrite),
// updating pool accounting.
func (fs *FS) WriteAt(p string, off int64, data synthetic.Content) error {
	fs.chargeMeta(1)
	info, err := fs.ns.Stat(p)
	if err != nil {
		return err
	}
	m := fs.metaOf(info.ID)
	if m == nil {
		return fmt.Errorf("pfs: no pool metadata for %s", p)
	}
	if m.state == Migrated {
		return fmt.Errorf("%w: %s", ErrOffline, p)
	}
	grow := off + data.Len() - info.Size
	if grow > 0 {
		pl := fs.pools[m.pool]
		if grow > pl.Free() {
			return fmt.Errorf("%w: pool %s", ErrNoSpace, m.pool)
		}
		pl.used += grow
	}
	// Any write dirties a premigrated copy back to resident.
	m.state = Resident
	return fs.ns.WriteAt(p, off, data)
}

// Truncate shortens a resident file, releasing pool space.
func (fs *FS) Truncate(p string, length int64) error {
	fs.chargeMeta(1)
	info, err := fs.ns.Stat(p)
	if err != nil {
		return err
	}
	m := fs.metaOf(info.ID)
	if m != nil && m.state == Migrated {
		return fmt.Errorf("%w: %s", ErrOffline, p)
	}
	if err := fs.ns.Truncate(p, length); err != nil {
		return err
	}
	if m != nil {
		fs.pools[m.pool].used -= info.Size - length
		m.state = Resident
	}
	return nil
}

// Stat returns combined namespace + residency information.
func (fs *FS) Stat(p string) (Info, error) {
	fs.chargeMeta(1)
	return fs.statQuiet(p)
}

func (fs *FS) statQuiet(p string) (Info, error) {
	vi, err := fs.ns.Stat(p)
	if err != nil {
		return Info{}, err
	}
	return fs.decorate(vi), nil
}

func (fs *FS) decorate(vi vfs.Info) Info {
	out := Info{Info: vi}
	if m := fs.metaOf(vi.ID); m != nil {
		out.Pool = m.pool
		out.State = m.state
	}
	return out
}

// StatID resolves a file ID (the synchronous deleter's lookup).
func (fs *FS) StatID(id vfs.FileID) (Info, error) {
	fs.chargeMeta(1)
	vi, err := fs.ns.StatID(id)
	if err != nil {
		return Info{}, err
	}
	return fs.decorate(vi), nil
}

// ReadDir lists a directory, billing metadata cost for the whole batch
// in one charge (bulk stat — how PFTool's ReadDir processes work).
func (fs *FS) ReadDir(p string) ([]Info, error) {
	entries, err := fs.ns.ReadDir(p)
	if err != nil {
		fs.chargeMeta(1)
		return nil, err
	}
	fs.chargeMeta(1 + len(entries)/64) // amortized bulk readdir
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = fs.decorate(e)
	}
	return out, nil
}

// Remove unlinks a file or empty directory, releasing pool space for
// resident data.
func (fs *FS) Remove(p string) error {
	fs.chargeMeta(1)
	info, err := fs.ns.Stat(p)
	if err != nil {
		return err
	}
	if err := fs.ns.Remove(p); err != nil {
		return err
	}
	fs.releaseMeta(info)
	return nil
}

// RemoveAll removes a subtree, releasing pool space.
func (fs *FS) RemoveAll(p string) error {
	// Count first (the metadata charge precedes the removal, as one
	// batch), then release pool/meta accounting per inode on a second
	// pass. Both passes enumerate without building paths or Infos: a
	// campaign tears down millions of archived stubs this way.
	count := 0
	if err := fs.ns.VisitTree(p, func(vfs.FileID, int64, bool) { count++ }); err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			return nil
		}
		return err
	}
	fs.chargeMeta(count)
	if err := fs.ns.VisitTree(p, func(id vfs.FileID, size int64, dir bool) {
		fs.releaseMetaID(id, size)
	}); err != nil {
		return err
	}
	return fs.ns.RemoveAll(p)
}

// releaseMetaID is releaseMeta for callers that already hold the inode
// identity and size (the bulk-removal pass).
func (fs *FS) releaseMetaID(id vfs.FileID, size int64) {
	m := fs.metaOf(id)
	if m == nil {
		return
	}
	if m.state != Migrated {
		fs.pools[m.pool].used -= size
	}
	fs.delMeta(id)
}

func (fs *FS) releaseMeta(info vfs.Info) {
	m := fs.metaOf(info.ID)
	if m == nil {
		return
	}
	if m.state != Migrated {
		fs.pools[m.pool].used -= info.Size
	}
	fs.delMeta(info.ID)
}

// Rename moves a file or tree (one metadata operation; IDs persist).
// A replaced destination file has its pool space released.
func (fs *FS) Rename(oldp, newp string) error {
	fs.chargeMeta(1)
	si, err := fs.ns.Stat(oldp)
	if err != nil {
		return err
	}
	var replaced *vfs.Info
	if di, derr := fs.ns.Stat(newp); derr == nil && !di.IsDir() && di.ID != si.ID {
		replaced = &di
	}
	if err := fs.ns.Rename(oldp, newp); err != nil {
		return err
	}
	if replaced != nil {
		fs.releaseMeta(*replaced)
	}
	return nil
}

// Exists reports whether p resolves (free: a dcache hit).
func (fs *FS) Exists(p string) bool { return fs.ns.Exists(p) }

// SetXattr sets an extended attribute (used by HSM bookkeeping).
func (fs *FS) SetXattr(p, k, v string) error { return fs.ns.SetXattr(p, k, v) }

// GetXattr reads an extended attribute.
func (fs *FS) GetXattr(p, k string) (string, error) { return fs.ns.GetXattr(p, k) }

// Walk visits the subtree without metadata charges (callers doing
// policy-grade scans should use Scan, which bills correctly).
func (fs *FS) Walk(p string, fn func(Info) error) error {
	return fs.ns.Walk(p, func(vi vfs.Info) error {
		return fn(fs.decorate(vi))
	})
}

// NumInodes reports the total inode count.
func (fs *FS) NumInodes() int { return fs.ns.NumInodes() }

// NumFiles reports the regular-file count.
func (fs *FS) NumFiles() int { return fs.ns.NumFiles() }

// TotalBytes reports the logical size of all files.
func (fs *FS) TotalBytes() int64 { return fs.ns.TotalBytes() }

// --- Migration state transitions (driven by the HSM layer) ---

// SetPremigrated marks a resident file premigrated (a valid copy now
// exists on the backend; data remains on disk).
func (fs *FS) SetPremigrated(p string) error {
	return fs.transition(p, func(m *fileMeta, info vfs.Info) error {
		if m.state == Migrated {
			return fmt.Errorf("%w: %s is migrated", ErrBadState, p)
		}
		m.state = Premigrated
		return nil
	})
}

// Punch converts a premigrated file to a migrated stub, freeing its
// disk blocks while keeping the inode, size, and xattrs visible.
func (fs *FS) Punch(p string) error {
	return fs.transition(p, func(m *fileMeta, info vfs.Info) error {
		if m.state != Premigrated {
			return fmt.Errorf("%w: punch requires premigrated, %s is %v", ErrBadState, p, m.state)
		}
		fs.pools[m.pool].used -= info.Size
		m.state = Migrated
		return nil
	})
}

// Restore lands recalled data back into the file, making it resident
// (or premigrated, if keepBackendCopy is true — a recall leaves the
// tape copy valid).
func (fs *FS) Restore(p string, keepBackendCopy bool) error {
	return fs.transition(p, func(m *fileMeta, info vfs.Info) error {
		if m.state != Migrated {
			return fmt.Errorf("%w: restore requires migrated, %s is %v", ErrBadState, p, m.state)
		}
		pl := fs.pools[m.pool]
		if info.Size > pl.Free() {
			return fmt.Errorf("%w: pool %s recall of %d bytes", ErrNoSpace, m.pool, info.Size)
		}
		pl.used += info.Size
		if keepBackendCopy {
			m.state = Premigrated
		} else {
			m.state = Resident
		}
		return nil
	})
}

func (fs *FS) transition(p string, fn func(*fileMeta, vfs.Info) error) error {
	fs.chargeMeta(1)
	info, err := fs.ns.Stat(p)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return fmt.Errorf("%w: %s", vfs.ErrIsDir, p)
	}
	m := fs.metaOf(info.ID)
	if m == nil {
		return fmt.Errorf("pfs: no pool metadata for %s", p)
	}
	return fn(m, info)
}

// State reports a file's residency state.
func (fs *FS) State(p string) (MigState, error) {
	info, err := fs.statQuiet(p)
	if err != nil {
		return 0, err
	}
	return info.State, nil
}

// Scan runs a full-filesystem inode scan, invoking fn for every inode,
// and charges the calibrated scan cost (NumInodes x ScanPerInode /
// ScanParallel) in batches so concurrent actors interleave. This is the
// GPFS policy-engine primitive underlying ILM list and migration
// policies.
func (fs *FS) Scan(fn func(Info) error) error {
	const batch = 10000
	per := fs.cfg.ScanPerInode / time.Duration(fs.cfg.ScanParallel)
	count := 0
	err := fs.ns.Walk("/", func(vi vfs.Info) error {
		count++
		if count%batch == 0 {
			fs.clock.Sleep(time.Duration(batch) * per)
		}
		return fn(fs.decorate(vi))
	})
	if rem := count % batch; rem > 0 {
		fs.clock.Sleep(time.Duration(rem) * per)
	}
	return err
}
