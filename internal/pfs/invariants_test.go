package pfs

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simtime"
	"repro/internal/synthetic"
)

// TestInvariantPoolAccounting drives a file system through a random
// sequence of writes, overwrites, truncates, removes, renames, and
// migration-state transitions, then verifies that every pool's Used()
// equals the sum of on-disk bytes (resident + premigrated) of the files
// placed in it.
func TestInvariantPoolAccounting(t *testing.T) {
	clock := simtime.NewClock()
	cfg := GPFSConfig("gpfs")
	cfg.MetaOpCost = 0
	fs := New(clock, cfg)
	r := rand.New(rand.NewSource(11))
	clock.Go(func() {
		fs.MkdirAll("/d")
		var paths []string
		for step := 0; step < 2000; step++ {
			switch op := r.Intn(100); {
			case op < 35: // create or overwrite
				p := fmt.Sprintf("/d/f%03d", r.Intn(120))
				pool := []string{"fast", "slow"}[r.Intn(2)]
				size := int64(r.Intn(10000) + 1)
				if err := fs.WriteFileIn(p, synthetic.NewUniform(uint64(step), size), pool); err != nil {
					t.Fatal(err)
				}
				paths = appendUnique(paths, p)
			case op < 45 && len(paths) > 0: // append
				p := paths[r.Intn(len(paths))]
				if info, err := fs.Stat(p); err == nil {
					fs.WriteAt(p, info.Size, synthetic.NewUniform(uint64(step), int64(r.Intn(500)+1)))
				}
			case op < 55 && len(paths) > 0: // truncate
				p := paths[r.Intn(len(paths))]
				if info, err := fs.Stat(p); err == nil && info.Size > 0 {
					fs.Truncate(p, int64(r.Intn(int(info.Size))))
				}
			case op < 70 && len(paths) > 0: // remove
				p := paths[r.Intn(len(paths))]
				fs.Remove(p)
			case op < 80 && len(paths) > 0: // rename
				src := paths[r.Intn(len(paths))]
				dst := fmt.Sprintf("/d/f%03d", r.Intn(120))
				if src != dst && fs.Exists(src) {
					fs.Rename(src, dst)
					paths = appendUnique(paths, dst)
				}
			case op < 90 && len(paths) > 0: // premigrate
				p := paths[r.Intn(len(paths))]
				fs.SetPremigrated(p) // may fail; fine
			default: // punch or restore
				if len(paths) == 0 {
					continue
				}
				p := paths[r.Intn(len(paths))]
				if st, err := fs.State(p); err == nil {
					switch st {
					case Premigrated:
						fs.Punch(p)
					case Migrated:
						fs.Restore(p, r.Intn(2) == 0)
					}
				}
			}
			if step%200 == 0 {
				checkAccounting(t, fs, step)
			}
		}
		checkAccounting(t, fs, 2000)
	})
	if _, err := clock.Run(); err != nil {
		t.Fatal(err)
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

func checkAccounting(t *testing.T, fs *FS, step int) {
	t.Helper()
	want := make(map[string]int64)
	err := fs.Walk("/", func(i Info) error {
		if i.IsDir() {
			return nil
		}
		if i.State != Migrated {
			want[i.Pool] += i.Size
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range fs.Pools() {
		if got := pool.Used(); got != want[pool.Spec.Name] {
			t.Fatalf("step %d: pool %s Used=%d, walk says %d",
				step, pool.Spec.Name, got, want[pool.Spec.Name])
		}
		if pool.Used() < 0 {
			t.Fatalf("step %d: pool %s negative usage", step, pool.Spec.Name)
		}
		if pool.Used() > pool.Spec.Capacity {
			t.Fatalf("step %d: pool %s over capacity", step, pool.Spec.Name)
		}
	}
}

// TestInvariantStubsKeepSizes checks that a migrated stub reports its
// logical size while charging no pool space, across random punch and
// restore cycles.
func TestInvariantStubsKeepSizes(t *testing.T) {
	clock := simtime.NewClock()
	cfg := GPFSConfig("gpfs")
	cfg.MetaOpCost = 0
	fs := New(clock, cfg)
	r := rand.New(rand.NewSource(5))
	clock.Go(func() {
		fs.MkdirAll("/d")
		sizes := make(map[string]int64)
		for i := 0; i < 40; i++ {
			p := fmt.Sprintf("/d/f%02d", i)
			size := int64(r.Intn(100000) + 1)
			fs.WriteFile(p, synthetic.NewUniform(uint64(i+1), size))
			sizes[p] = size
			fs.SetPremigrated(p)
			fs.Punch(p)
		}
		for cycle := 0; cycle < 100; cycle++ {
			p := fmt.Sprintf("/d/f%02d", r.Intn(40))
			st, _ := fs.State(p)
			if st == Migrated {
				fs.Restore(p, true)
				fs.Punch(p)
			}
			info, err := fs.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size != sizes[p] {
				t.Fatalf("%s: stub size %d, want %d", p, info.Size, sizes[p])
			}
		}
	})
	clock.RunFor()
}
