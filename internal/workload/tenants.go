// Tenant-population generation: the multi-tenant demand model behind
// E21. A real archive center serves a huge registered population of
// which only a heavy-tailed sliver is active on any given day, with a
// diurnal load curve and bursty per-user sessions (a user who shows
// up recalls a flurry of files, not one). The generator produces that
// shape deterministically from a seed: a Zipf activity distribution
// over the population, a cosine diurnal intensity, and
// geometric-sized per-tenant bursts, emitted as a time-sorted request
// stream the scheduler can arbitrate.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/sched"
)

// TenantPopulation configures the synthetic user population and its
// arrival process. Zero fields take the defaults noted per field.
type TenantPopulation struct {
	Tenants int   // population size (default 1e6)
	Seed    int64 // generation seed; same seed => identical output

	// ZipfS is the activity tail exponent: tenant at activity rank r
	// carries weight r^-ZipfS. Default 1.1 — the top 1% of a 1M-user
	// population then drives ~80% of requests.
	ZipfS float64

	// Class mix, by probability at tenant-assignment time. A tenant
	// keeps one class for life (a user is an interactive analyst, a
	// pipeline, or a background sweep — not all three at once).
	// Defaults: 25% interactive, 50% batch, 25% scavenger.
	InteractiveFrac float64
	BatchFrac       float64

	// Arrival process over [0, Day).
	Day      time.Duration // default 24h
	Requests int           // expected total requests (default 10000)

	// Diurnal shape: intensity(t) = base * (1 + Amplitude*cos(2π(t-Peak)/Day)).
	// Amplitude in [0,1); default 0.7. Peak is the time-of-day of
	// maximum intensity; default 14h (mid-afternoon).
	Amplitude float64
	Peak      time.Duration

	// BurstMean is the mean burst size (geometric): one arrival event
	// is a tenant session issuing BurstMean requests on average,
	// seconds apart. Default 3; 1 disables burstiness.
	BurstMean float64
}

// Request is one tenant demand event.
type Request struct {
	At     time.Duration // arrival offset within the day
	Tenant int           // tenant index (0-based)
	Class  sched.Class
	Burst  int // burst (session) index the request belongs to
}

// TenantName renders a stable tenant label for scheduler tagging.
func TenantName(idx int) string { return fmt.Sprintf("tenant-%07d", idx) }

func (p TenantPopulation) withDefaults() TenantPopulation {
	if p.Tenants <= 0 {
		p.Tenants = 1_000_000
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.1
	}
	if p.InteractiveFrac == 0 && p.BatchFrac == 0 {
		p.InteractiveFrac, p.BatchFrac = 0.25, 0.50
	}
	if p.Day <= 0 {
		p.Day = 24 * time.Hour
	}
	if p.Requests <= 0 {
		p.Requests = 10_000
	}
	if p.Amplitude == 0 {
		p.Amplitude = 0.7
	}
	if p.Amplitude < 0 {
		p.Amplitude = 0
	}
	if p.Amplitude >= 1 {
		p.Amplitude = 0.99
	}
	if p.Peak == 0 {
		p.Peak = 14 * time.Hour
	}
	if p.BurstMean < 1 {
		p.BurstMean = 3
	}
	return p
}

// ClassOf deterministically assigns a tenant its QoS class from the
// configured mix: a splitmix of (seed, tenant index) so the class is
// a property of the tenant, independent of how many requests are
// drawn.
func (p TenantPopulation) ClassOf(tenant int) sched.Class {
	p = p.withDefaults()
	u := float64(splitmix(uint64(p.Seed)^uint64(tenant)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
	switch {
	case u < p.InteractiveFrac:
		return sched.Interactive
	case u < p.InteractiveFrac+p.BatchFrac:
		return sched.Batch
	default:
		return sched.Scavenger
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GenerateRequests draws the request stream: deterministic for a
// given config, sorted by arrival time (ties by burst then order of
// generation, so the ordering itself is reproducible).
func (p TenantPopulation) GenerateRequests() []Request {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	// Activity weights: cumulative Zipf over ranks 1..N. Tenant index
	// IS the rank (index 0 = heaviest user); callers who want
	// anonymized IDs can permute the names, the distribution is what
	// matters.
	cum := make([]float64, p.Tenants)
	total := 0.0
	for i := 0; i < p.Tenants; i++ {
		total += math.Pow(float64(i+1), -p.ZipfS)
		cum[i] = total
	}

	// Burst (session) events: expected Requests/BurstMean of them,
	// each placed by inverse-CDF sampling of the diurnal intensity.
	nBursts := int(math.Round(float64(p.Requests) / p.BurstMean))
	if nBursts < 1 {
		nBursts = 1
	}
	geomP := 1 / p.BurstMean // geometric success prob, mean 1/p
	out := make([]Request, 0, p.Requests)
	for b := 0; b < nBursts; b++ {
		at := p.diurnalInvCDF(rng.Float64())
		tenant := sort.SearchFloat64s(cum, rng.Float64()*total)
		class := p.ClassOf(tenant)
		size := 1
		for rng.Float64() > geomP && size < 1000 {
			size++
		}
		t := at
		for k := 0; k < size; k++ {
			if k > 0 {
				// In-session spacing: a few seconds between requests.
				t += time.Duration((1 + rng.ExpFloat64()*4) * float64(time.Second))
				if t >= p.Day {
					break
				}
			}
			out = append(out, Request{At: t, Tenant: tenant, Class: class, Burst: b})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// diurnalInvCDF maps u in [0,1) to an arrival time with density
// proportional to 1 + A*cos(2π(t-Peak)/Day), by bisection on the
// closed-form CDF (deterministic, ~50 iterations).
func (p TenantPopulation) diurnalInvCDF(u float64) time.Duration {
	day := p.Day.Seconds()
	peak := p.Peak.Seconds()
	cdf := func(t float64) float64 {
		// ∫0..t (1 + A·cos(2π(x-peak)/day)) dx / day
		w := 2 * math.Pi / day
		return (t + p.Amplitude/w*(math.Sin(w*(t-peak))-math.Sin(w*(-peak)))) / day
	}
	lo, hi := 0.0, day
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return time.Duration(lo * float64(time.Second))
}

// ActivityShare reports the fraction of requests carried by the top
// `frac` most-active tenants — the heavy-tail headline number.
func ActivityShare(reqs []Request, population int, frac float64) float64 {
	if len(reqs) == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, r := range reqs {
		counts[r.Tenant]++
	}
	top := int(float64(population) * frac)
	n := 0
	for tenant, c := range counts {
		if tenant < top { // tenant index is the activity rank
			n += c
		}
	}
	return float64(n) / float64(len(reqs))
}
