// Package workload generates the synthetic Open Science campaign used
// to reproduce the paper's §5.2 evaluation: 62 parallel archive jobs
// whose per-job file counts, data volumes, and average file sizes span
// the ranges reported in Figures 8–11 (1..2.92M files/job, 4..32593
// GB/job, 4 KB..4220 MB average file size, ~4 PB total over 18
// operation days), plus the background trunk traffic that produces the
// bandwidth-sharing variance of Figure 10.
//
// The paper's real inputs were seven Open Science projects' data sets;
// those are proprietary, so this package substitutes log-uniform draws
// over the same ranges (the paper's own figures show the jobs spread
// roughly evenly across the decades on log10 axes).
package workload

import (
	"math"
	"math/rand"

	"repro/internal/fabric"
	"strconv"
	"strings"

	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/synthetic"
)

// JobSpec is one parallel archive job of the campaign.
type JobSpec struct {
	ID          int
	Project     string
	NumFiles    int
	TotalBytes  int64
	AvgFileSize int64
	// Background is the fraction of the trunk consumed by other users
	// while this job runs (the "bandwidth sharing and machine sharing"
	// of §5.2).
	Background float64
}

// CampaignConfig bounds the generator. Zero fields take the paper's
// values.
type CampaignConfig struct {
	Jobs        int
	Seed        int64
	MinJobBytes int64
	MaxJobBytes int64
	MinFileSize int64
	MaxFileSize int64
	MaxJobFiles int
	// MaxSimFiles caps the number of files actually materialized per
	// job (memory guard). Job bytes are preserved; a capped job gets
	// proportionally larger files. Zero means no cap.
	MaxSimFiles int
	// MaxBackground bounds the background trunk share drawn per job.
	MaxBackground float64
}

// PaperCampaign returns the §5.2 configuration: 62 jobs over the
// figure ranges, with file counts capped at 300k per job for simulation
// memory (documented substitution; lift the cap to regenerate the full
// 2.92M-file extreme).
func PaperCampaign(seed int64) CampaignConfig {
	return CampaignConfig{
		Jobs:          62,
		Seed:          seed,
		MinJobBytes:   4e9,     // 4 GB/job
		MaxJobBytes:   32593e9, // 32593 GB/job
		MinFileSize:   4e3,     // 4 KB/file
		MaxFileSize:   4220e6,  // 4220 MB/file
		MaxJobFiles:   2920088, // Fig. 8 maximum
		MaxSimFiles:   300000,
		MaxBackground: 0.9,
	}
}

// Projects are the seven Open Science project labels used for
// co-location grouping.
var Projects = []string{
	"materials", "astronomy", "laser-plasma", "turbulence",
	"cosmology", "plasma-kinetics", "supernova",
}

// logUniform draws from [lo, hi] uniformly in log space.
func logUniform(r *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Generate produces the campaign's job specs deterministically from the
// config seed.
func Generate(cfg CampaignConfig) []JobSpec {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 62
	}
	base := PaperCampaign(cfg.Seed)
	if cfg.MinJobBytes <= 0 {
		cfg.MinJobBytes = base.MinJobBytes
	}
	if cfg.MaxJobBytes <= 0 {
		cfg.MaxJobBytes = base.MaxJobBytes
	}
	if cfg.MinFileSize <= 0 {
		cfg.MinFileSize = base.MinFileSize
	}
	if cfg.MaxFileSize <= 0 {
		cfg.MaxFileSize = base.MaxFileSize
	}
	if cfg.MaxJobFiles <= 0 {
		cfg.MaxJobFiles = base.MaxJobFiles
	}
	if cfg.MaxBackground <= 0 {
		cfg.MaxBackground = base.MaxBackground
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]JobSpec, cfg.Jobs)
	for i := range jobs {
		total := int64(logUniform(r, float64(cfg.MinJobBytes), float64(cfg.MaxJobBytes)))
		// Average file size skews toward the top of its range: the
		// paper's per-job mean is 596 MB against a log-uniform mean of
		// ~304 MB over the same [4 KB, 4220 MB] extremes, i.e. most
		// Open Science jobs wrote large files and the small-file jobs
		// are the tail.
		lo, hi := math.Log(float64(cfg.MinFileSize)), math.Log(float64(cfg.MaxFileSize))
		avg := int64(math.Exp(lo + math.Pow(r.Float64(), 0.72)*(hi-lo)))
		count := int(total / avg)
		if count < 1 {
			count = 1
		}
		if count > cfg.MaxJobFiles {
			count = cfg.MaxJobFiles
		}
		if cfg.MaxSimFiles > 0 && count > cfg.MaxSimFiles {
			count = cfg.MaxSimFiles
		}
		// Background sharing skews high: the Open Science campaign ran
		// alongside production users, so most jobs saw substantial
		// trunk and machine sharing (the paper's mean 575 MB/s against
		// a 1868 MB/s best). A small off-hours fraction ran on a nearly
		// idle trunk — those are the figure's ~1868 MB/s outliers.
		var bg float64
		if r.Float64() < 0.15 {
			bg = 0.1 * r.Float64() // off-hours job
		} else {
			bg = cfg.MaxBackground * math.Pow(r.Float64(), 0.3)
		}
		jobs[i] = JobSpec{
			ID:          i + 1,
			Project:     Projects[r.Intn(len(Projects))],
			NumFiles:    count,
			TotalBytes:  total,
			AvgFileSize: total / int64(count),
			Background:  bg,
		}
	}
	return jobs
}

// FileSizes draws the individual file sizes of a job: log-normal around
// the job's average with moderate spread, rescaled so the sum equals
// TotalBytes exactly.
func FileSizes(spec JobSpec, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed ^ int64(spec.ID)<<16))
	sizes := make([]int64, spec.NumFiles)
	var sum float64
	raw := make([]float64, spec.NumFiles)
	for i := range raw {
		raw[i] = float64(spec.AvgFileSize) * math.Exp(r.NormFloat64()*0.6)
		sum += raw[i]
	}
	scale := float64(spec.TotalBytes) / sum
	var acc int64
	for i := range sizes {
		sizes[i] = int64(raw[i] * scale)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		acc += sizes[i]
	}
	// Pin the total exactly by adjusting the last file.
	diff := spec.TotalBytes - acc
	if sizes[len(sizes)-1]+diff > 0 {
		sizes[len(sizes)-1] += diff
	}
	return sizes
}

// numName builds "<prefix>/<c><n zero-padded to width>" without the
// fmt machinery: tree builds format one name per simulated file, which
// made Sprintf a top allocator at paper scale.
func numName(prefix string, c byte, width, n int) string {
	digits := 1
	for v := n; v >= 10; v /= 10 {
		digits++
	}
	if digits < width {
		digits = width
	}
	var buf [20]byte
	num := strconv.AppendInt(buf[:0], int64(n), 10)
	var b strings.Builder
	b.Grow(len(prefix) + 2 + digits)
	b.WriteString(prefix)
	b.WriteByte('/')
	b.WriteByte(c)
	for i := len(num); i < width; i++ {
		b.WriteByte('0')
	}
	b.Write(num)
	return b.String()
}

// BuildTree materializes a job's files on fs under root, spreading them
// over subdirectories of at most dirFanout entries. It returns the
// total bytes written.
func BuildTree(fs *pfs.FS, root string, spec JobSpec, seed int64, dirFanout int) (int64, error) {
	if dirFanout <= 0 {
		dirFanout = 2048
	}
	sizes := FileSizes(spec, seed)
	var total int64
	var specs []pfs.FileSpec
	dir := ""
	for i, size := range sizes {
		if i%dirFanout == 0 {
			if len(specs) > 0 {
				if err := fs.WriteFiles(specs); err != nil {
					return total, err
				}
				specs = specs[:0]
			}
			dir = numName(root, 'd', 4, i/dirFanout)
			if err := fs.MkdirAll(dir); err != nil {
				return total, err
			}
		}
		specs = append(specs, pfs.FileSpec{
			Path:    numName(dir, 'f', 6, i),
			Content: synthetic.NewUniform(uint64(seed)^uint64(spec.ID)<<32^uint64(i), size),
		})
		total += size
	}
	if len(specs) > 0 {
		if err := fs.WriteFiles(specs); err != nil {
			return total, err
		}
	}
	return total, nil
}

// NoiseTarget is a shared channel background streams can occupy:
// satisfied by both *simtime.Pipe and *fabric.Link.
type NoiseTarget interface {
	Rate() float64
	Transfer(n int64)
}

// Noise occupies a channel with backlogged background streams until
// *stop becomes true, modelling the other Roadrunner users sharing the
// two 10GigE trunks during the Open Science runs. The channel is
// fair-share, so the background's slice is streams/(streams+foreground);
// the stream count is sized so the background receives roughly the
// requested fraction against a typical PFTool worker pool (~20 flows).
func Noise(clock *simtime.Clock, pipe NoiseTarget, fraction float64, stop *bool) {
	if fraction <= 0 {
		return
	}
	if fraction > 0.95 {
		fraction = 0.95
	}
	const typicalForeground = 20.0
	streams := int(fraction/(1-fraction)*typicalForeground + 0.5)
	if streams < 1 {
		streams = 1
	}
	// Each transfer is ~10 fair-share seconds of data: coarse enough to
	// keep event counts negligible over multi-day campaigns, fine
	// enough that streams stay continuously backlogged.
	burst := int64(pipe.Rate() * 10 / (typicalForeground + float64(streams)))
	if burst < 1 {
		burst = 1
	}
	for i := 0; i < streams; i++ {
		clock.Go(func() {
			// A fabric link offers a persistent stream: each burst is a
			// segment of one long-lived flow, so a multi-day campaign's
			// millions of bursts cost no fair-share recompute churn. The
			// generic path keeps per-burst transfers for other targets.
			if l, ok := pipe.(streamTarget); ok {
				st := l.Stream()
				for !*stop {
					st.Send(burst)
				}
				st.Close()
				return
			}
			for !*stop {
				pipe.Transfer(burst)
			}
		})
	}
}

// streamTarget is the optional NoiseTarget refinement fabric links
// provide: a persistent flow whose segments replace per-burst flows.
type streamTarget interface {
	Stream(opts ...fabric.Option) *fabric.Flow
}
