package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	jobs := Generate(PaperCampaign(7))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, 7, jobs); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Seed != 7 || len(tr.Jobs) != len(jobs) {
		t.Fatalf("trace = seed %d, %d jobs", tr.Seed, len(tr.Jobs))
	}
	for i := range jobs {
		if tr.Jobs[i] != jobs[i] {
			t.Fatalf("job %d differs after round trip", i)
		}
	}
}

func TestTraceRejectsBadVersion(t *testing.T) {
	r := strings.NewReader(`{"version": 99, "seed": 1, "jobs": []}`)
	if _, err := ReadTrace(r); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTraceValidatesJobs(t *testing.T) {
	cases := []string{
		`{"version":1,"seed":1,"jobs":[{"ID":1,"Project":"p","NumFiles":0,"TotalBytes":10}]}`,
		`{"version":1,"seed":1,"jobs":[{"ID":1,"Project":"p","NumFiles":100,"TotalBytes":10}]}`,
		`{"version":1,"seed":1,"jobs":[{"ID":1,"Project":"p","NumFiles":1,"TotalBytes":10,"Background":2}]}`,
		`{"version":1,"seed":1,"jobs":[{"ID":1,"Project":"","NumFiles":1,"TotalBytes":10}]}`,
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
