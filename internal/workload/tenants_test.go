package workload

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sched"
)

func testPop() TenantPopulation {
	return TenantPopulation{
		Tenants:  200_000,
		Seed:     42,
		Requests: 40_000,
	}
}

func TestTenantRequestsDeterministic(t *testing.T) {
	a := testPop().GenerateRequests()
	b := testPop().GenerateRequests()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different request streams")
	}
	c := TenantPopulation{Tenants: 200_000, Seed: 43, Requests: 40_000}.GenerateRequests()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical request streams")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("stream not time-sorted at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
	}
}

func TestTenantActivityHeavyTailed(t *testing.T) {
	p := testPop()
	reqs := p.GenerateRequests()
	// With ZipfS=1.1 over 200k tenants the top 1% of the population
	// carries the large majority of requests (analytically ~75-80%).
	share := ActivityShare(reqs, p.withDefaults().Tenants, 0.01)
	if share < 0.55 || share > 0.95 {
		t.Fatalf("top-1%% activity share = %.3f, want heavy tail in [0.55, 0.95]", share)
	}
	// And the bottom half of the population is nearly silent.
	bottomHalf := 1 - ActivityShare(reqs, p.withDefaults().Tenants, 0.5)
	if bottomHalf > 0.10 {
		t.Fatalf("bottom-50%% carries %.3f of requests, want < 0.10", bottomHalf)
	}
}

func TestTenantArrivalsDiurnal(t *testing.T) {
	p := testPop()
	d := p.withDefaults()
	reqs := p.GenerateRequests()
	if got := len(reqs); math.Abs(float64(got)-float64(d.Requests)) > 0.2*float64(d.Requests) {
		t.Fatalf("generated %d requests, want ~%d", got, d.Requests)
	}
	// Hourly buckets: the peak hour's rate must be ~(1+A)x the mean
	// and the trough ~(1-A)x, within sampling tolerance.
	buckets := make([]float64, 24)
	for _, r := range reqs {
		buckets[int(r.At/time.Hour)%24]++
	}
	mean := float64(len(reqs)) / 24
	peakHour := int(d.Peak / time.Hour)
	troughHour := (peakHour + 12) % 24
	if got, want := buckets[peakHour]/mean, 1+d.Amplitude; math.Abs(got-want) > 0.25 {
		t.Fatalf("peak-hour intensity %.2fx mean, want ~%.2fx", got, want)
	}
	if got, want := buckets[troughHour]/mean, 1-d.Amplitude; math.Abs(got-want) > 0.25 {
		t.Fatalf("trough-hour intensity %.2fx mean, want ~%.2fx", got, want)
	}
	// Mean inter-arrival over the day matches the configured volume.
	interMean := d.Day.Seconds() / float64(len(reqs))
	var gaps float64
	for i := 1; i < len(reqs); i++ {
		gaps += (reqs[i].At - reqs[i-1].At).Seconds()
	}
	empirical := gaps / float64(len(reqs)-1)
	if math.Abs(empirical-interMean) > 0.2*interMean {
		t.Fatalf("mean inter-arrival %.3fs, want ~%.3fs", empirical, interMean)
	}
}

func TestTenantArrivalsBursty(t *testing.T) {
	p := testPop()
	d := p.withDefaults()
	reqs := p.GenerateRequests()
	// Burst sizes are geometric with the configured mean; group by
	// burst id and compare the empirical mean (truncation at day-end
	// shaves a little, hence the tolerance).
	sizes := make(map[int]int)
	for _, r := range reqs {
		sizes[r.Burst]++
	}
	var sum float64
	for _, n := range sizes {
		sum += float64(n)
	}
	got := sum / float64(len(sizes))
	if math.Abs(got-d.BurstMean) > 0.25*d.BurstMean {
		t.Fatalf("mean burst size %.2f, want ~%.1f", got, d.BurstMean)
	}
	// A burst shares one tenant: check per-minute arrival counts are
	// overdispersed relative to Poisson (variance/mean > 1.5).
	perMin := make(map[int]float64)
	for _, r := range reqs {
		perMin[int(r.At/time.Minute)]++
	}
	var m, v float64
	n := 24 * 60.0
	for _, c := range perMin {
		m += c
	}
	m /= n
	for i := 0; i < int(n); i++ {
		v += (perMin[i] - m) * (perMin[i] - m)
	}
	v /= n
	if v/m < 1.5 {
		t.Fatalf("per-minute variance/mean = %.2f, want > 1.5 (bursty)", v/m)
	}
}

func TestTenantClassMixAndStability(t *testing.T) {
	p := testPop()
	d := p.withDefaults()
	counts := map[sched.Class]int{}
	n := 50_000
	for i := 0; i < n; i++ {
		c := p.ClassOf(i)
		if c2 := p.ClassOf(i); c2 != c {
			t.Fatalf("tenant %d class not stable: %v then %v", i, c, c2)
		}
		counts[c]++
	}
	fi := float64(counts[sched.Interactive]) / float64(n)
	fb := float64(counts[sched.Batch]) / float64(n)
	fs := float64(counts[sched.Scavenger]) / float64(n)
	if math.Abs(fi-d.InteractiveFrac) > 0.02 || math.Abs(fb-d.BatchFrac) > 0.02 {
		t.Fatalf("class mix interactive=%.3f batch=%.3f scavenger=%.3f, want %.2f/%.2f/%.2f",
			fi, fb, fs, d.InteractiveFrac, d.BatchFrac, 1-d.InteractiveFrac-d.BatchFrac)
	}
}
