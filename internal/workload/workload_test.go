package workload

import (
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/simtime"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(PaperCampaign(7))
	b := Generate(PaperCampaign(7))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between runs with the same seed", i)
		}
	}
	c := Generate(PaperCampaign(8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical campaigns")
	}
}

func TestGenerateRespectsRanges(t *testing.T) {
	cfg := PaperCampaign(1)
	jobs := Generate(cfg)
	if len(jobs) != 62 {
		t.Fatalf("jobs = %d, want 62", len(jobs))
	}
	for _, j := range jobs {
		if j.TotalBytes < cfg.MinJobBytes || j.TotalBytes > cfg.MaxJobBytes {
			t.Errorf("job %d TotalBytes %d out of range", j.ID, j.TotalBytes)
		}
		if j.NumFiles < 1 || j.NumFiles > cfg.MaxSimFiles {
			t.Errorf("job %d NumFiles %d out of range", j.ID, j.NumFiles)
		}
		if j.Background < 0 || j.Background > cfg.MaxBackground {
			t.Errorf("job %d Background %f out of range", j.ID, j.Background)
		}
		if j.AvgFileSize != j.TotalBytes/int64(j.NumFiles) {
			t.Errorf("job %d AvgFileSize inconsistent", j.ID)
		}
		if j.Project == "" {
			t.Errorf("job %d has no project", j.ID)
		}
	}
}

func TestGenerateSpansDecades(t *testing.T) {
	// The figures show jobs spread over many orders of magnitude; the
	// generator must not cluster them.
	jobs := Generate(PaperCampaign(42))
	smallJobs, bigJobs := 0, 0
	for _, j := range jobs {
		if j.TotalBytes < 100e9 {
			smallJobs++
		}
		if j.TotalBytes > 5e12 {
			bigJobs++
		}
	}
	if smallJobs == 0 || bigJobs == 0 {
		t.Errorf("campaign not spread: %d small, %d big", smallJobs, bigJobs)
	}
}

func TestFileSizesSumExactly(t *testing.T) {
	spec := JobSpec{ID: 3, NumFiles: 500, TotalBytes: 123456789, AvgFileSize: 123456789 / 500}
	sizes := FileSizes(spec, 99)
	if len(sizes) != 500 {
		t.Fatalf("len = %d", len(sizes))
	}
	var sum int64
	for _, s := range sizes {
		if s < 1 {
			t.Fatal("non-positive file size")
		}
		sum += s
	}
	if sum != spec.TotalBytes {
		t.Errorf("sum = %d, want %d", sum, spec.TotalBytes)
	}
}

func TestFileSizesVary(t *testing.T) {
	spec := JobSpec{ID: 1, NumFiles: 100, TotalBytes: 100e6, AvgFileSize: 1e6}
	sizes := FileSizes(spec, 5)
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 2*min {
		t.Errorf("sizes too uniform: min %d max %d", min, max)
	}
}

func TestBuildTreeMaterializesJob(t *testing.T) {
	clock := simtime.NewClock()
	cfg := pfs.PanasasConfig("scratch")
	cfg.MetaOpCost = 0
	fs := pfs.New(clock, cfg)
	spec := JobSpec{ID: 1, NumFiles: 250, TotalBytes: 25e6, AvgFileSize: 1e5}
	clock.Go(func() {
		total, err := BuildTree(fs, "/job1", spec, 11, 100)
		if err != nil {
			t.Fatal(err)
		}
		if total != spec.TotalBytes {
			t.Errorf("total = %d, want %d", total, spec.TotalBytes)
		}
		if fs.NumFiles() != 250 {
			t.Errorf("NumFiles = %d, want 250", fs.NumFiles())
		}
		// Fanout of 100: expect 3 subdirectories.
		entries, _ := fs.ReadDir("/job1")
		if len(entries) != 3 {
			t.Errorf("subdirs = %d, want 3", len(entries))
		}
	})
	if _, err := clock.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseOccupiesPipe(t *testing.T) {
	clock := simtime.NewClock()
	pipe := simtime.NewPipe(clock, "trunk", 1e9)
	stop := false
	Noise(clock, pipe, 0.5, &stop)
	var foregroundTime time.Duration
	clock.Go(func() {
		// Give the noise a head start so sharing is established.
		clock.Sleep(5 * time.Second)
		start := clock.Now()
		pipe.Transfer(10e9) // 10s alone; ~20s at half the pipe
		foregroundTime = clock.Now() - start
		stop = true
	})
	if _, err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if foregroundTime < 13*time.Second {
		t.Errorf("foreground took %v; noise did not contend (want >13s)", foregroundTime)
	}
}

func TestNoiseZeroFractionIsNoop(t *testing.T) {
	clock := simtime.NewClock()
	pipe := simtime.NewPipe(clock, "trunk", 1e9)
	stop := false
	Noise(clock, pipe, 0, &stop)
	end, err := clock.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("end = %v, want 0", end)
	}
}
