package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace is a serialized campaign: the exact job sequence of a run, so
// campaigns replay bit-identically across machines and survive
// generator changes. The simulator being deterministic, a trace plus a
// seed pins the entire experiment.
type Trace struct {
	// Version guards the format; bump on incompatible changes.
	Version int       `json:"version"`
	Seed    int64     `json:"seed"`
	Jobs    []JobSpec `json:"jobs"`
}

// traceVersion is the current trace format version.
const traceVersion = 1

// WriteTrace serializes a campaign's jobs to w.
func WriteTrace(w io.Writer, seed int64, jobs []JobSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Trace{Version: traceVersion, Seed: seed, Jobs: jobs})
}

// ReadTrace parses a campaign trace and validates every job.
func ReadTrace(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("workload: parsing trace: %w", err)
	}
	if t.Version != traceVersion {
		return Trace{}, fmt.Errorf("workload: trace version %d, want %d", t.Version, traceVersion)
	}
	for i, j := range t.Jobs {
		if err := validateJob(j); err != nil {
			return Trace{}, fmt.Errorf("workload: trace job %d: %w", i, err)
		}
	}
	return t, nil
}

// validateJob rejects specs the simulator cannot run.
func validateJob(j JobSpec) error {
	switch {
	case j.NumFiles < 1:
		return fmt.Errorf("NumFiles %d < 1", j.NumFiles)
	case j.TotalBytes < int64(j.NumFiles):
		return fmt.Errorf("TotalBytes %d < NumFiles %d (files need at least a byte)", j.TotalBytes, j.NumFiles)
	case j.Background < 0 || j.Background > 1:
		return fmt.Errorf("Background %f outside [0,1]", j.Background)
	case j.Project == "":
		return fmt.Errorf("empty project")
	}
	return nil
}
