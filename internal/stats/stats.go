// Package stats provides the small statistics toolkit the experiment
// harness uses to regenerate the paper's figures: streaming summaries
// (min/max/mean/percentiles), log10 histograms (Figures 8, 9 and 11 are
// log-scale series), and fixed-width table/series rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates values and reports order statistics.
type Summary struct {
	vals   []float64
	sum    float64
	sorted []float64 // cached sort of vals; nil after Add invalidates it
}

// Add appends one observation.
func (s *Summary) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = nil
}

// Reset discards every observation, returning the summary to its
// zero state so the same value can accumulate a fresh sample set.
func (s *Summary) Reset() {
	s.vals = s.vals[:0]
	s.sum = 0
	s.sorted = nil
}

// N reports the observation count.
func (s *Summary) N() int { return len(s.vals) }

// Sum reports the observation total.
func (s *Summary) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean (0 for empty).
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Min reports the smallest observation (0 for empty).
func (s *Summary) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest observation (0 for empty).
func (s *Summary) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile reports the p-th percentile (0 <= p <= 100) by nearest
// rank on the sorted observations. The sorted order is computed once
// and cached until the next Add, so percentile-heavy reporting (every
// summaryRows call asks for four quantiles) sorts each sample set once
// instead of per query.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.vals...)
		sort.Float64s(s.sorted)
	}
	sorted := s.sorted
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Median is Percentile(50).
func (s *Summary) Median() float64 { return s.Percentile(50) }

// GeoMean reports the geometric mean of positive observations.
func (s *Summary) GeoMean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var logSum float64
	n := 0
	for _, v := range s.vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Stddev reports the population standard deviation.
func (s *Summary) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Values returns a copy of the raw observations in insertion order.
func (s *Summary) Values() []float64 { return append([]float64(nil), s.vals...) }

// LogHistogram buckets positive values by order of magnitude — the
// shape of the paper's log10-scale job plots.
type LogHistogram struct {
	counts map[int]int
	total  int
}

// NewLogHistogram creates an empty histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{counts: make(map[int]int)}
}

// Add buckets one value by floor(log10(v)); non-positive values land in
// a sentinel bucket below every real one.
func (h *LogHistogram) Add(v float64) {
	h.total++
	if v <= 0 {
		h.counts[math.MinInt32]++
		return
	}
	h.counts[int(math.Floor(math.Log10(v)))]++
}

// Total reports the number of values added.
func (h *LogHistogram) Total() int { return h.total }

// Bucket reports the count in decade d (values in [10^d, 10^(d+1))).
func (h *LogHistogram) Bucket(d int) int { return h.counts[d] }

// Render draws the histogram as fixed-width text with one row per
// populated decade, labelled with the unit.
func (h *LogHistogram) Render(unit string) string {
	if h.total == 0 {
		return "(empty)\n"
	}
	var decades []int
	for d := range h.counts {
		decades = append(decades, d)
	}
	sort.Ints(decades)
	maxCount := 0
	for _, d := range decades {
		if h.counts[d] > maxCount {
			maxCount = h.counts[d]
		}
	}
	var b strings.Builder
	for _, d := range decades {
		label := "<=0"
		if d != math.MinInt32 {
			label = fmt.Sprintf("1e%d", d)
		}
		bar := strings.Repeat("#", h.counts[d]*40/maxCount)
		fmt.Fprintf(&b, "%8s %-6s |%-40s| %d\n", label, unit, bar, h.counts[d])
	}
	return b.String()
}

// Table renders fixed-width rows: a convenience for the harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row, formatting each cell with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-2:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// MB converts bytes to the paper's megabytes (1e6).
func MB(bytes float64) float64 { return bytes / 1e6 }

// GB converts bytes to the paper's gigabytes (1e9).
func GB(bytes float64) float64 { return bytes / 1e9 }
