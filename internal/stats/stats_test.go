package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Errorf("N=%d Sum=%v Mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min=%v Max=%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Errorf("Median=%v", s.Median())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.GeoMean() != 0 || s.Stddev() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Summary
	for _, p := range []float64{0, 50, 90, 100} {
		if got := s.Percentile(p); got != 0 {
			t.Errorf("Percentile(%v) on empty summary = %v, want 0", p, got)
		}
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 1, 3} {
		s.Add(v)
	}
	s.Reset()
	if s.N() != 0 || s.Sum() != 0 || s.Mean() != 0 {
		t.Errorf("after Reset: N=%d Sum=%v Mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if got := s.Percentile(50); got != 0 {
		t.Errorf("Percentile(50) after Reset = %v, want 0", got)
	}
	// The summary must be reusable: old observations and the cached
	// sort must not leak into a fresh sample set.
	s.Add(7)
	s.Add(9)
	if s.N() != 2 || s.Sum() != 16 || s.Min() != 7 || s.Max() != 9 || s.Median() != 7 {
		t.Errorf("after Reset+Add: N=%d Sum=%v Min=%v Max=%v Median=%v",
			s.N(), s.Sum(), s.Min(), s.Max(), s.Median())
	}
}

func TestPercentileBounds(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 100 {
		t.Errorf("P0=%v P100=%v", s.Percentile(0), s.Percentile(100))
	}
	if p := s.Percentile(90); p < 89 || p > 91 {
		t.Errorf("P90=%v", p)
	}
}

func TestGeoMean(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(100)
	if g := s.GeoMean(); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean=%v, want 10", g)
	}
	// Non-positive values are excluded.
	s.Add(0)
	if g := s.GeoMean(); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean with zero=%v, want 10", g)
	}
}

func TestStddev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if d := s.Stddev(); math.Abs(d-2) > 1e-9 {
		t.Errorf("Stddev=%v, want 2", d)
	}
}

func TestQuickPercentileWithinMinMax(t *testing.T) {
	f := func(vals []float64, p uint8) bool {
		var s Summary
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		q := s.Percentile(float64(p % 101))
		return q >= s.Min() && q <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram()
	h.Add(5)   // decade 0
	h.Add(50)  // decade 1
	h.Add(55)  // decade 1
	h.Add(5e6) // decade 6
	h.Add(0)   // sentinel
	h.Add(-3)  // sentinel
	if h.Total() != 6 {
		t.Errorf("Total=%d", h.Total())
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 2 || h.Bucket(6) != 1 {
		t.Errorf("buckets: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(6))
	}
	out := h.Render("files")
	if !strings.Contains(out, "1e6") || !strings.Contains(out, "#") {
		t.Errorf("Render = %q", out)
	}
}

func TestLogHistogramEmptyRender(t *testing.T) {
	if out := NewLogHistogram().Render("x"); out != "(empty)\n" {
		t.Errorf("Render = %q", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("job", "MB/s")
	tb.Row(1, 575.25)
	tb.Row(2, 73.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "job") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "575.25") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestUnitHelpers(t *testing.T) {
	if MB(5e6) != 5 || GB(3e9) != 3 {
		t.Error("unit conversions wrong")
	}
}

func TestPercentileCacheInterleavedWithAdd(t *testing.T) {
	var s Summary
	// Interleave queries and additions: each Percentile call must see
	// every observation added so far, not a stale cached sort.
	s.Add(10)
	if got := s.Percentile(50); got != 10 {
		t.Fatalf("median of {10} = %v", got)
	}
	s.Add(2)
	s.Add(30)
	if got := s.Percentile(50); got != 10 {
		t.Fatalf("median of {2,10,30} = %v", got)
	}
	if got := s.Percentile(0); got != 2 {
		t.Fatalf("p0 of {2,10,30} = %v", got)
	}
	s.Add(1)
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 after adding 1 = %v (stale cache?)", got)
	}
	if got := s.Percentile(100); got != 30 {
		t.Fatalf("p100 = %v", got)
	}
	// Repeated queries without Add hit the cache and stay consistent.
	for i := 0; i < 3; i++ {
		if got := s.Percentile(50); got != s.Median() {
			t.Fatalf("repeated median query drifted: %v", got)
		}
	}
	s.Add(100)
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 after adding 100 = %v (stale cache?)", got)
	}
}
