// Package ilm implements the policy layer the paper leans on from GPFS
// 3.2: placement policies (choose a storage pool at create time — the
// archive sends small files to a slow pool), list policies (scan the
// file system and emit candidate lists, which the parallel data
// migrator consumes instead of GPFS's own migration policy, §4.2.4),
// and threshold/migration rules toward external pools (tape via HSM).
package ilm

import (
	"sort"
	"strings"
	"time"

	"repro/internal/pfs"
)

// Predicate selects files during a policy scan.
type Predicate func(info pfs.Info, now time.Duration) bool

// And composes predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(i pfs.Info, now time.Duration) bool {
		for _, p := range ps {
			if !p(i, now) {
				return false
			}
		}
		return true
	}
}

// Or composes predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	return func(i pfs.Info, now time.Duration) bool {
		for _, p := range ps {
			if p(i, now) {
				return true
			}
		}
		return false
	}
}

// Not inverts a predicate.
func Not(p Predicate) Predicate {
	return func(i pfs.Info, now time.Duration) bool { return !p(i, now) }
}

// IsFile matches regular files (directories never migrate).
func IsFile() Predicate {
	return func(i pfs.Info, _ time.Duration) bool { return !i.IsDir() }
}

// SizeAtLeast matches files of at least n bytes.
func SizeAtLeast(n int64) Predicate {
	return func(i pfs.Info, _ time.Duration) bool { return i.Size >= n }
}

// SizeLess matches files smaller than n bytes.
func SizeLess(n int64) Predicate {
	return func(i pfs.Info, _ time.Duration) bool { return i.Size < n }
}

// OlderThan matches files whose modification age exceeds d.
func OlderThan(d time.Duration) Predicate {
	return func(i pfs.Info, now time.Duration) bool { return now-i.ModTime > d }
}

// NotAccessedFor matches files whose last data read (or, if never read,
// last modification) is more than d in the past — the
// frequency-of-access criterion ILM adds over plain HSM age rules
// (§2.3).
func NotAccessedFor(d time.Duration) Predicate {
	return func(i pfs.Info, now time.Duration) bool {
		last := i.ATime
		if i.ModTime > last {
			last = i.ModTime
		}
		return now-last > d
	}
}

// PathPrefix matches files under the given directory prefix.
func PathPrefix(prefix string) Predicate {
	prefix = strings.TrimSuffix(prefix, "/")
	return func(i pfs.Info, _ time.Duration) bool {
		return i.Path == prefix || strings.HasPrefix(i.Path, prefix+"/")
	}
}

// InPool matches files placed in the named pool.
func InPool(pool string) Predicate {
	return func(i pfs.Info, _ time.Duration) bool { return i.Pool == pool }
}

// StateIs matches files in the given migration state.
func StateIs(s pfs.MigState) Predicate {
	return func(i pfs.Info, _ time.Duration) bool { return i.State == s }
}

// HasXattr matches files carrying the extended attribute key=value
// (any value if value is empty).
func HasXattr(key, value string) Predicate {
	return func(i pfs.Info, _ time.Duration) bool {
		v, ok := i.Xattrs[key]
		if !ok {
			return false
		}
		return value == "" || v == value
	}
}

// ListPolicy emits the files matching Where, the GPFS LIST rule whose
// output feeds the parallel data migrator.
type ListPolicy struct {
	Name  string
	Where Predicate
	Limit int // 0 = unlimited
}

// RunList scans fs and returns matching files in deterministic walk
// order. The scan charges the calibrated per-inode cost.
func RunList(fs *pfs.FS, p ListPolicy) ([]pfs.Info, error) {
	now := fs.Clock().Now()
	var out []pfs.Info
	err := fs.Scan(func(i pfs.Info) error {
		if i.IsDir() {
			return nil
		}
		if p.Where == nil || p.Where(i, now) {
			if p.Limit > 0 && len(out) >= p.Limit {
				return nil
			}
			out = append(out, i)
		}
		return nil
	})
	return out, err
}

// PlacementRule routes new files to a pool.
type PlacementRule struct {
	Name string
	// Where inspects the prospective file (only Path and Size are
	// populated at placement time).
	Where Predicate
	Pool  string
}

// Placement is an ordered rule list with a default pool.
type Placement struct {
	Rules   []PlacementRule
	Default string
}

// Choose returns the pool for a file about to be created.
func (p Placement) Choose(path string, size int64, now time.Duration) string {
	probe := pfs.Info{}
	probe.Path = path
	probe.Size = size
	for _, r := range p.Rules {
		if r.Where == nil || r.Where(probe, now) {
			return r.Pool
		}
	}
	return p.Default
}

// ArchivePlacement is the paper's archive placement: everything lands
// in the fast FC pool except small files, which go to the slow pool
// (§4.2.1).
func ArchivePlacement(smallFileLimit int64) Placement {
	return Placement{
		Rules: []PlacementRule{
			{Name: "small-to-slow", Where: SizeLess(smallFileLimit), Pool: "slow"},
		},
		Default: "fast",
	}
}

// ThresholdPolicy triggers migration when a pool passes a fill
// fraction, selecting victims by the Where predicate until the pool is
// back under the low watermark — the GPFS THRESHOLD rule driving the
// external (tape) pool.
type ThresholdPolicy struct {
	Pool  string
	High  float64 // start migrating at this fill fraction
	Low   float64 // stop once below this
	Where Predicate
}

// Candidates returns the files to migrate, oldest first, sized to bring
// the pool below the low watermark. It returns nil when the pool is
// under the high watermark.
func (tp ThresholdPolicy) Candidates(fs *pfs.FS) ([]pfs.Info, error) {
	pool, err := fs.Pool(tp.Pool)
	if err != nil {
		return nil, err
	}
	cap := pool.Spec.Capacity
	if float64(pool.Used()) < tp.High*float64(cap) {
		return nil, nil
	}
	list, err := RunList(fs, ListPolicy{
		Name:  "threshold-" + tp.Pool,
		Where: And(IsFile(), InPool(tp.Pool), StateIs(pfs.Resident), orTrue(tp.Where)),
	})
	if err != nil {
		return nil, err
	}
	// Oldest first: steady bytes leave before hot ones.
	sortByModTime(list)
	need := pool.Used() - int64(tp.Low*float64(cap))
	var out []pfs.Info
	var freed int64
	for _, f := range list {
		if freed >= need {
			break
		}
		out = append(out, f)
		freed += f.Size
	}
	return out, nil
}

func orTrue(p Predicate) Predicate {
	if p == nil {
		return func(pfs.Info, time.Duration) bool { return true }
	}
	return p
}

func sortByModTime(list []pfs.Info) {
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].ModTime != list[j].ModTime {
			return list[i].ModTime < list[j].ModTime
		}
		return list[i].Path < list[j].Path
	})
}
