package ilm

import (
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/synthetic"
)

func sim(t *testing.T, fn func(c *simtime.Clock, fs *pfs.FS)) {
	t.Helper()
	c := simtime.NewClock()
	cfg := pfs.GPFSConfig("gpfs")
	cfg.MetaOpCost = 0 // policy tests don't exercise metadata timing
	fs := pfs.New(c, cfg)
	c.Go(func() { fn(c, fs) })
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func seed(fs *pfs.FS) {
	fs.MkdirAll("/proj/a")
	fs.MkdirAll("/proj/b")
	fs.WriteFile("/proj/a/big", synthetic.NewUniform(1, 10e6))
	fs.WriteFile("/proj/a/small", synthetic.NewUniform(2, 100))
	fs.WriteFileIn("/proj/b/slowfile", synthetic.NewUniform(3, 5000), "slow")
}

func TestPredicates(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *pfs.FS) {
		seed(fs)
		now := c.Now()
		big, _ := fs.Stat("/proj/a/big")
		small, _ := fs.Stat("/proj/a/small")
		slow, _ := fs.Stat("/proj/b/slowfile")
		dir, _ := fs.Stat("/proj/a")

		if !SizeAtLeast(1e6)(big, now) || SizeAtLeast(1e6)(small, now) {
			t.Error("SizeAtLeast wrong")
		}
		if !SizeLess(1000)(small, now) || SizeLess(1000)(big, now) {
			t.Error("SizeLess wrong")
		}
		if !PathPrefix("/proj/a")(big, now) || PathPrefix("/proj/a")(slow, now) {
			t.Error("PathPrefix wrong")
		}
		if !InPool("slow")(slow, now) || InPool("slow")(big, now) {
			t.Error("InPool wrong")
		}
		if !IsFile()(big, now) || IsFile()(dir, now) {
			t.Error("IsFile wrong")
		}
		if !StateIs(pfs.Resident)(big, now) {
			t.Error("StateIs wrong")
		}
		if !And(IsFile(), SizeAtLeast(1e6))(big, now) {
			t.Error("And wrong")
		}
		if !Or(SizeLess(10), SizeAtLeast(1e6))(big, now) {
			t.Error("Or wrong")
		}
		if Not(IsFile())(big, now) {
			t.Error("Not wrong")
		}
	})
}

func TestOlderThan(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *pfs.FS) {
		fs.WriteFile("/old", synthetic.NewUniform(1, 10))
		c.Sleep(10 * time.Minute)
		fs.WriteFile("/new", synthetic.NewUniform(2, 10))
		old, _ := fs.Stat("/old")
		fresh, _ := fs.Stat("/new")
		now := c.Now()
		if !OlderThan(5*time.Minute)(old, now) {
			t.Error("old file should match")
		}
		if OlderThan(5*time.Minute)(fresh, now) {
			t.Error("fresh file should not match")
		}
	})
}

func TestHasXattr(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *pfs.FS) {
		fs.WriteFile("/f", synthetic.NewUniform(1, 1))
		fs.SetXattr("/f", "trash.owner", "alice")
		info, _ := fs.Stat("/f")
		now := c.Now()
		if !HasXattr("trash.owner", "alice")(info, now) {
			t.Error("exact value should match")
		}
		if !HasXattr("trash.owner", "")(info, now) {
			t.Error("any-value should match")
		}
		if HasXattr("trash.owner", "bob")(info, now) {
			t.Error("wrong value should not match")
		}
	})
}

func TestRunListFilters(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *pfs.FS) {
		seed(fs)
		list, err := RunList(fs, ListPolicy{Name: "big", Where: And(IsFile(), SizeAtLeast(1e6))})
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != 1 || list[0].Path != "/proj/a/big" {
			t.Errorf("list = %+v", list)
		}
	})
}

func TestRunListLimit(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *pfs.FS) {
		seed(fs)
		list, err := RunList(fs, ListPolicy{Name: "all", Where: IsFile(), Limit: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != 2 {
			t.Errorf("len = %d, want 2", len(list))
		}
	})
}

func TestRunListChargesScanTime(t *testing.T) {
	c := simtime.NewClock()
	cfg := pfs.GPFSConfig("gpfs")
	fs := pfs.New(c, cfg)
	var elapsed time.Duration
	c.Go(func() {
		seed(fs)
		start := c.Now()
		RunList(fs, ListPolicy{Name: "x", Where: IsFile()})
		elapsed = c.Now() - start
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(fs.NumInodes()) * cfg.ScanPerInode
	if elapsed != want {
		t.Errorf("scan charged %v, want %v", elapsed, want)
	}
}

func TestPlacementRules(t *testing.T) {
	p := ArchivePlacement(1e6)
	if got := p.Choose("/x", 100, 0); got != "slow" {
		t.Errorf("small file placed in %s, want slow", got)
	}
	if got := p.Choose("/x", 10e6, 0); got != "fast" {
		t.Errorf("big file placed in %s, want fast", got)
	}
}

func TestPlacementDefaultOnly(t *testing.T) {
	p := Placement{Default: "fast"}
	if got := p.Choose("/anything", 5, 0); got != "fast" {
		t.Errorf("got %s", got)
	}
}

func TestThresholdPolicyBelowHighIsNil(t *testing.T) {
	sim(t, func(c *simtime.Clock, fs *pfs.FS) {
		seed(fs)
		tp := ThresholdPolicy{Pool: "fast", High: 0.9, Low: 0.5}
		cands, err := tp.Candidates(fs)
		if err != nil {
			t.Fatal(err)
		}
		if cands != nil {
			t.Errorf("pool nearly empty but got %d candidates", len(cands))
		}
	})
}

func TestThresholdPolicySelectsOldestUntilLow(t *testing.T) {
	c := simtime.NewClock()
	cfg := pfs.GPFSConfig("gpfs")
	cfg.MetaOpCost = 0
	cfg.Pools = []pfs.PoolSpec{{Name: "fast", Capacity: 1000, Rate: 1e9}}
	cfg.DefaultPool = "fast"
	fs := pfs.New(c, cfg)
	c.Go(func() {
		// Three files of 300 bytes each, created at different times:
		// pool at 90% (900/1000). High=0.8, Low=0.4 -> need to free
		// down to 400 -> migrate the two oldest.
		fs.WriteFile("/first", synthetic.NewUniform(1, 300))
		c.Sleep(time.Minute)
		fs.WriteFile("/second", synthetic.NewUniform(2, 300))
		c.Sleep(time.Minute)
		fs.WriteFile("/third", synthetic.NewUniform(3, 300))
		tp := ThresholdPolicy{Pool: "fast", High: 0.8, Low: 0.4}
		cands, err := tp.Candidates(fs)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 2 {
			t.Fatalf("got %d candidates, want 2", len(cands))
		}
		if cands[0].Path != "/first" || cands[1].Path != "/second" {
			t.Errorf("candidates = %s, %s; want /first, /second", cands[0].Path, cands[1].Path)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
