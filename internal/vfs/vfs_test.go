package vfs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/synthetic"
)

func newFS() *FS { return New("test", nil) }

func TestMkdirAndStat(t *testing.T) {
	fs := newFS()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir() {
		t.Error("expected directory")
	}
	if info.Name != "a" {
		t.Errorf("Name = %q, want a", info.Name)
	}
}

func TestMkdirMissingParentFails(t *testing.T) {
	fs := newFS()
	if err := fs.Mkdir("/a/b"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestMkdirAllDeep(t *testing.T) {
	fs := newFS()
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/a/b/c/d") {
		t.Error("deep path missing")
	}
	// Idempotent.
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Errorf("repeat MkdirAll: %v", err)
	}
	if fs.NumDirs() != 5 {
		t.Errorf("NumDirs = %d, want 5", fs.NumDirs())
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := newFS()
	c := synthetic.NewUniform(1, 1000)
	if err := fs.WriteFile("/f", c); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c) {
		t.Error("content mismatch")
	}
	info, _ := fs.Stat("/f")
	if info.Size != 1000 {
		t.Errorf("Size = %d, want 1000", info.Size)
	}
	if fs.NumFiles() != 1 {
		t.Errorf("NumFiles = %d, want 1", fs.NumFiles())
	}
}

func TestWriteFileReplacesKeepsID(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", synthetic.NewUniform(1, 10))
	id1, _ := fs.Stat("/f")
	fs.WriteFile("/f", synthetic.NewUniform(2, 20))
	id2, _ := fs.Stat("/f")
	if id1.ID != id2.ID {
		t.Error("overwrite changed the file ID")
	}
	if id2.Size != 20 {
		t.Errorf("Size = %d, want 20", id2.Size)
	}
}

func TestFileIDsUniqueAndStable(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/a", synthetic.NewUniform(1, 1))
	fs.WriteFile("/b", synthetic.NewUniform(2, 1))
	ia, _ := fs.Stat("/a")
	ib, _ := fs.Stat("/b")
	if ia.ID == ib.ID {
		t.Error("two files share an ID")
	}
	fs.Rename("/a", "/c")
	ic, _ := fs.Stat("/c")
	if ic.ID != ia.ID {
		t.Error("rename changed the file ID")
	}
	if got, err := fs.StatID(ia.ID); err != nil || got.Size != 1 {
		t.Errorf("StatID = %v, %v", got, err)
	}
}

func TestWriteAtAppendAndOverwrite(t *testing.T) {
	fs := newFS()
	base := synthetic.NewUniform(10, 100)
	fs.WriteFile("/f", base.Slice(0, 50))
	if err := fs.WriteAt("/f", 50, base.Slice(50, 50)); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if !got.Equal(base) {
		t.Error("append via WriteAt did not reassemble content")
	}
	// Overwrite interior.
	patch := synthetic.NewUniform(99, 10)
	fs.WriteAt("/f", 20, patch)
	got, _ = fs.ReadFile("/f")
	if !got.Slice(20, 10).Equal(patch) {
		t.Error("interior overwrite missing")
	}
	if got.Len() != 100 {
		t.Errorf("Len = %d, want 100", got.Len())
	}
}

func TestWriteAtSparseFails(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", synthetic.NewUniform(1, 10))
	if err := fs.WriteAt("/f", 20, synthetic.NewUniform(2, 5)); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := newFS()
	c := synthetic.NewUniform(1, 100)
	fs.WriteFile("/f", c)
	if err := fs.Truncate("/f", 40); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if !got.Equal(c.Slice(0, 40)) {
		t.Error("truncate content mismatch")
	}
	if err := fs.Truncate("/f", 100); !errors.Is(err, ErrInvalid) {
		t.Errorf("extending truncate: err = %v, want ErrInvalid", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := newFS()
	for _, name := range []string{"/z", "/a", "/m"} {
		fs.WriteFile(name, synthetic.NewUniform(1, 1))
	}
	fs.Mkdir("/dir")
	entries, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "dir", "m", "z"}
	if len(entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.Name != want[i] {
			t.Errorf("entry %d = %q, want %q", i, e.Name, want[i])
		}
	}
}

func TestReadDirOnFileFails(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", synthetic.NewUniform(1, 1))
	if _, err := fs.ReadDir("/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("err = %v, want ErrNotDir", err)
	}
}

func TestRemoveFile(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", synthetic.NewUniform(1, 1))
	info, _ := fs.Stat("/f")
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Error("file still exists")
	}
	if _, err := fs.StatID(info.ID); !errors.Is(err, ErrNotExist) {
		t.Error("removed file still resolvable by ID")
	}
	if fs.NumFiles() != 0 {
		t.Errorf("NumFiles = %d, want 0", fs.NumFiles())
	}
}

func TestRemoveNonEmptyDirFails(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", synthetic.NewUniform(1, 1))
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("err = %v, want ErrNotEmpty", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/d/e/f")
	fs.WriteFile("/d/x", synthetic.NewUniform(1, 1))
	fs.WriteFile("/d/e/y", synthetic.NewUniform(2, 1))
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d") {
		t.Error("tree still exists")
	}
	if fs.NumInodes() != 1 { // just the root
		t.Errorf("NumInodes = %d, want 1", fs.NumInodes())
	}
	// Missing path is fine.
	if err := fs.RemoveAll("/nope"); err != nil {
		t.Errorf("RemoveAll missing: %v", err)
	}
}

func TestRenameReplacesFile(t *testing.T) {
	fs := newFS()
	a := synthetic.NewUniform(1, 10)
	fs.WriteFile("/a", a)
	fs.WriteFile("/b", synthetic.NewUniform(2, 20))
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Error("source still exists")
	}
	got, _ := fs.ReadFile("/b")
	if !got.Equal(a) {
		t.Error("destination does not hold source content")
	}
	if fs.NumFiles() != 1 {
		t.Errorf("NumFiles = %d, want 1", fs.NumFiles())
	}
}

func TestRenameDirectory(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/a/sub")
	fs.WriteFile("/a/sub/f", synthetic.NewUniform(1, 5))
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/b/sub/f") {
		t.Error("renamed tree incomplete")
	}
}

func TestXattrs(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", synthetic.NewUniform(1, 1))
	if err := fs.SetXattr("/f", "hsm.state", "migrated"); err != nil {
		t.Fatal(err)
	}
	v, err := fs.GetXattr("/f", "hsm.state")
	if err != nil || v != "migrated" {
		t.Errorf("GetXattr = %q, %v", v, err)
	}
	info, _ := fs.Stat("/f")
	if info.Xattrs["hsm.state"] != "migrated" {
		t.Error("xattr missing from Stat")
	}
	fs.SetXattr("/f", "hsm.state", "")
	if v, _ := fs.GetXattr("/f", "hsm.state"); v != "" {
		t.Errorf("deleted xattr still present: %q", v)
	}
}

func TestWalkDeterministicOrder(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/b/y")
	fs.MkdirAll("/a")
	fs.WriteFile("/a/2", synthetic.NewUniform(1, 1))
	fs.WriteFile("/a/1", synthetic.NewUniform(2, 1))
	fs.WriteFile("/b/y/z", synthetic.NewUniform(3, 1))
	var paths []string
	fs.Walk("/", func(info Info) error {
		paths = append(paths, info.Path)
		return nil
	})
	want := []string{"/", "/a", "/a/1", "/a/2", "/b", "/b/y", "/b/y/z"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("paths[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/a", synthetic.NewUniform(1, 1))
	fs.WriteFile("/b", synthetic.NewUniform(2, 1))
	stop := errors.New("stop")
	count := 0
	err := fs.Walk("/", func(info Info) error {
		count++
		if count == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Errorf("err = %v, want stop", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestTotalBytes(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a", synthetic.NewUniform(1, 100))
	fs.WriteFile("/d/b", synthetic.NewUniform(2, 250))
	if got := fs.TotalBytes(); got != 350 {
		t.Errorf("TotalBytes = %d, want 350", got)
	}
}

func TestModTimeUsesClock(t *testing.T) {
	var now time.Duration
	fs := New("t", func() time.Duration { return now })
	now = 5 * time.Second
	fs.WriteFile("/f", synthetic.NewUniform(1, 1))
	info, _ := fs.Stat("/f")
	if info.ModTime != 5*time.Second {
		t.Errorf("ModTime = %v, want 5s", info.ModTime)
	}
	now = 9 * time.Second
	fs.WriteAt("/f", 0, synthetic.NewUniform(2, 1))
	info, _ = fs.Stat("/f")
	if info.ModTime != 9*time.Second {
		t.Errorf("ModTime after write = %v, want 9s", info.ModTime)
	}
}

func TestPathCleaning(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/a/b")
	fs.WriteFile("/a/b/f", synthetic.NewUniform(1, 1))
	for _, p := range []string{"a/b/f", "/a//b/f", "/a/./b/f", "/a/b/../b/f"} {
		if !fs.Exists(p) {
			t.Errorf("path %q did not resolve", p)
		}
	}
}
