// Package vfs implements an in-memory POSIX-like file tree used as the
// namespace layer of the simulated parallel file systems. It supplies
// inodes with stable file IDs (the GPFS-style unique identifier the
// synchronous deleter depends on), directories, rename/unlink/truncate,
// extended attributes (used by the HSM layer for stub state), and
// deterministic sorted directory listings.
//
// File data is a synthetic.Content, so files of any size cost O(extents)
// of memory. vfs carries no timing model: timing belongs to the pfs and
// device layers above it.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"repro/internal/synthetic"
)

// Errors returned by FS operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrInvalid  = errors.New("vfs: invalid argument")
)

// FileID is the per-filesystem unique identifier of an inode. It never
// changes across renames and is never reused, mirroring the GPFS file
// ID the paper's synchronous deleter looks up.
type FileID uint64

// FileType distinguishes inode kinds.
type FileType int

// Inode kinds.
const (
	TypeFile FileType = iota
	TypeDir
)

func (t FileType) String() string {
	if t == TypeDir {
		return "dir"
	}
	return "file"
}

// Info is the stat result for an inode.
type Info struct {
	Name    string
	Path    string
	ID      FileID
	Type    FileType
	Size    int64
	ModTime time.Duration // virtual time
	ATime   time.Duration // virtual time of last data read
	Xattrs  map[string]string
}

// IsDir reports whether the inode is a directory.
func (i Info) IsDir() bool { return i.Type == TypeDir }

type node struct {
	id       FileID
	typ      FileType
	size     int64
	modTime  time.Duration
	atime    time.Duration
	content  synthetic.Content
	children map[string]*node // directories only
	xattrs   map[string]string
	nlink    int // reference count from directory entries
}

// FS is a single in-memory file tree. FS methods are not safe for
// concurrent use from multiple OS threads; in simulation exactly one
// actor runs at a time, so no locking is needed or provided.
type FS struct {
	name   string
	root   *node
	nextID FileID
	byID   []*node // index = FileID (IDs are dense and never reused)
	pot    []node  // chunked inode arena (stable pointers)
	// memoDir/memoNode cache the directory of the last successful
	// multi-segment resolution. Per-file operations in bulk loads and
	// tree walks hit the same directory run after run, so the memo
	// replaces a full segment walk with one string compare plus one
	// child lookup. Any operation that unlinks or moves nodes clears it.
	memoDir  string
	memoNode *node
	now    func() time.Duration
	nfiles int
	ndirs  int
}

// New creates an empty file system. now supplies virtual timestamps and
// may be nil (timestamps then stay zero).
func New(name string, now func() time.Duration) *FS {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	fs := &FS{name: name, now: now, byID: make([]*node, 1)} // index 0 unused
	fs.root = fs.newNode(TypeDir)
	fs.ndirs = 1
	return fs
}

// Name reports the file system's label.
func (fs *FS) Name() string { return fs.name }

// NumFiles reports the number of regular files.
func (fs *FS) NumFiles() int { return fs.nfiles }

// NumDirs reports the number of directories (including the root).
func (fs *FS) NumDirs() int { return fs.ndirs }

// NumInodes reports the total inode count.
func (fs *FS) NumInodes() int { return fs.nfiles + fs.ndirs }

func (fs *FS) newNode(t FileType) *node {
	fs.nextID++
	// Inodes come from a chunked arena: one heap allocation per 1024
	// inodes instead of one per file, which mattered at paper scale.
	if len(fs.pot) == 0 {
		fs.pot = make([]node, 1024)
	}
	n := &fs.pot[0]
	fs.pot = fs.pot[1:]
	*n = node{id: fs.nextID, typ: t, modTime: fs.now(), nlink: 1}
	if t == TypeDir {
		n.children = make(map[string]*node)
	}
	fs.byID = append(fs.byID, n)
	return n
}

// clean canonicalizes p to a rooted slash path. Paths that are already
// canonical — the overwhelming case in simulation hot loops, which
// resolve millions of generated "/job/dNNNN/fNNNNNN" names — are
// returned as-is without allocating.
func clean(p string) string {
	if isClean(p) {
		return p
	}
	return path.Clean("/" + p)
}

// isClean reports whether p is a rooted slash path with no empty, "."
// or ".." segments and no trailing slash (root excepted) — i.e. whether
// path.Clean("/"+p) would return p unchanged.
func isClean(p string) bool {
	if len(p) == 0 || p[0] != '/' {
		return false
	}
	if len(p) == 1 {
		return true
	}
	if p[len(p)-1] == '/' {
		return false
	}
	segStart := 1
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			switch seg := p[segStart:i]; seg {
			case "", ".", "..":
				return false
			}
			segStart = i + 1
		}
	}
	return true
}

// resolve walks a clean rooted path to its node, without allocating.
// On a miss it reports the failing condition via notDir/ok so callers
// choose between an error (lookup) and a cheap boolean (lookupOK).
func (fs *FS) resolve(p string) (n *node, notDir, ok bool) {
	if p == "/" {
		return fs.root, false, true
	}
	if d := len(fs.memoDir); d > 0 && len(p) > d+1 && p[d] == '/' &&
		p[:d] == fs.memoDir && strings.IndexByte(p[d+1:], '/') < 0 {
		n, ok := fs.memoNode.children[p[d+1:]]
		return n, false, ok
	}
	cur := fs.root
	parent := cur
	rest := p[1:]
	for len(rest) > 0 {
		var part string
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			part, rest = rest[:j], rest[j+1:]
		} else {
			part, rest = rest, ""
		}
		if cur.typ != TypeDir {
			return nil, true, false
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, false, false
		}
		parent = cur
		cur = next
	}
	if parent != fs.root {
		fs.memoDir = p[:strings.LastIndexByte(p, '/')]
		fs.memoNode = parent
	}
	return cur, false, true
}

// lookup resolves p to its node.
func (fs *FS) lookup(p string) (*node, error) {
	p = clean(p)
	n, notDir, ok := fs.resolve(p)
	if !ok {
		if notDir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return n, nil
}

// lookupOK resolves p to its node, reporting a miss as a boolean
// instead of a constructed error: the existence probes issued for every
// file created in bulk loads never pay an allocation.
func (fs *FS) lookupOK(p string) (*node, bool) {
	n, _, ok := fs.resolve(clean(p))
	return n, ok
}

// lookupParent resolves the parent directory of p and the leaf name.
func (fs *FS) lookupParent(p string) (*node, string, error) {
	p = clean(p)
	if p == "/" {
		return nil, "", fmt.Errorf("%w: cannot address root's parent", ErrInvalid)
	}
	i := strings.LastIndexByte(p, '/')
	dir, leaf := p[:i], p[i+1:]
	if dir == "" {
		dir = "/"
	}
	if dir == fs.memoDir && fs.memoNode != nil {
		return fs.memoNode, leaf, nil
	}
	parent, err := fs.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.typ != TypeDir {
		return nil, "", fmt.Errorf("%w: %s", ErrNotDir, dir)
	}
	if dir != "/" {
		fs.memoDir, fs.memoNode = dir, parent
	}
	return parent, leaf, nil
}

// Mkdir creates a single directory. The parent must exist.
func (fs *FS) Mkdir(p string) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	if _, ok := parent.children[leaf]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	parent.children[leaf] = fs.newNode(TypeDir)
	parent.modTime = fs.now()
	fs.ndirs++
	return nil
}

// MkdirAll creates p and any missing ancestors.
func (fs *FS) MkdirAll(p string) error {
	p = clean(p)
	if p == "/" {
		return nil
	}
	cur := fs.root
	rest := p[1:]
	for len(rest) > 0 {
		var part string
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			part, rest = rest[:j], rest[j+1:]
		} else {
			part, rest = rest, ""
		}
		next, ok := cur.children[part]
		if !ok {
			next = fs.newNode(TypeDir)
			cur.children[part] = next
			cur.modTime = fs.now()
			fs.ndirs++
		} else if next.typ != TypeDir {
			return fmt.Errorf("%w: %s", ErrNotDir, part)
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces the regular file at p with content.
func (fs *FS) WriteFile(p string, content synthetic.Content) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	existing, ok := parent.children[leaf]
	if ok {
		if existing.typ == TypeDir {
			return fmt.Errorf("%w: %s", ErrIsDir, p)
		}
		existing.content = content
		existing.size = content.Len()
		existing.modTime = fs.now()
		return nil
	}
	n := fs.newNode(TypeFile)
	n.content = content
	n.size = content.Len()
	parent.children[leaf] = n
	parent.modTime = fs.now()
	fs.nfiles++
	return nil
}

// WriteFileReserve writes content at p like WriteFileID, but first
// calls reserve with the inode about to be replaced (ID zero on fresh
// create). If reserve errors the namespace is left untouched. This
// lets the pfs layer run its capacity check with the same single path
// resolution that performs the write.
func (fs *FS) WriteFileReserve(p string, content synthetic.Content, reserve func(prevID FileID, prevSize int64) error) (FileID, error) {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		return 0, err
	}
	existing, ok := parent.children[leaf]
	if ok && existing.typ == TypeDir {
		return 0, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if ok {
		if err := reserve(existing.id, existing.size); err != nil {
			return 0, err
		}
		existing.content = content
		existing.size = content.Len()
		existing.modTime = fs.now()
		return existing.id, nil
	}
	if err := reserve(0, 0); err != nil {
		return 0, err
	}
	n := fs.newNode(TypeFile)
	n.content = content
	n.size = content.Len()
	parent.children[leaf] = n
	parent.modTime = fs.now()
	fs.nfiles++
	return n.id, nil
}

// ReadFile returns the content of the regular file at p, updating its
// access time (the signal ILM age/frequency policies consume).
func (fs *FS) ReadFile(p string) (synthetic.Content, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return synthetic.Content{}, err
	}
	if n.typ == TypeDir {
		return synthetic.Content{}, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	n.atime = fs.now()
	return n.content, nil
}

// WriteAt overwrites [off, off+data.Len()) of the file at p, extending
// the file with the data if it writes at exactly EOF.
func (fs *FS) WriteAt(p string, off int64, data synthetic.Content) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	if n.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	switch {
	case off == n.size:
		n.content = synthetic.Concat(n.content, data)
	case off+data.Len() <= n.size:
		n.content = n.content.Overwrite(off, data)
	case off < n.size:
		// Straddles EOF: truncate then append.
		n.content = synthetic.Concat(n.content.Truncate(off), data)
	default:
		return fmt.Errorf("%w: sparse write at %d past size %d", ErrInvalid, off, n.size)
	}
	n.size = n.content.Len()
	n.modTime = fs.now()
	return nil
}

// Truncate cuts the file at p to length (which must not exceed the
// current size).
func (fs *FS) Truncate(p string, length int64) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	if n.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if length < 0 || length > n.size {
		return fmt.Errorf("%w: truncate to %d of %d", ErrInvalid, length, n.size)
	}
	n.content = n.content.Truncate(length)
	n.size = length
	n.modTime = fs.now()
	return nil
}

// Stat returns the Info for p.
func (fs *FS) Stat(p string) (Info, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return Info{}, err
	}
	return fs.info(clean(p), n), nil
}

// StatOK is Stat for existence probes: a miss is reported as a boolean
// with no error value constructed, so bulk loaders probing every path
// they create do not allocate an error chain per new file.
func (fs *FS) StatOK(p string) (Info, bool) {
	p = clean(p)
	n, _, ok := fs.resolve(p)
	if !ok {
		return Info{}, false
	}
	return fs.info(p, n), true
}

// StatID returns the Info for a file ID, with an empty Path (IDs are
// path-independent).
func (fs *FS) StatID(id FileID) (Info, error) {
	var n *node
	if int(id) < len(fs.byID) {
		n = fs.byID[id]
	}
	if n == nil {
		return Info{}, fmt.Errorf("%w: id %d", ErrNotExist, id)
	}
	return fs.info("", n), nil
}

func (fs *FS) info(p string, n *node) Info {
	var xa map[string]string
	if len(n.xattrs) > 0 {
		xa = make(map[string]string, len(n.xattrs))
		for k, v := range n.xattrs {
			xa[k] = v
		}
	}
	return Info{
		Name:    path.Base(p),
		Path:    p,
		ID:      n.id,
		Type:    n.typ,
		Size:    n.size,
		ModTime: n.modTime,
		ATime:   n.atime,
		Xattrs:  xa,
	}
}

// infoLean is info without the xattr copy (Xattrs stays nil).
func (fs *FS) infoLean(p string, n *node) Info {
	return Info{
		Name:    path.Base(p),
		Path:    p,
		ID:      n.id,
		Type:    n.typ,
		Size:    n.size,
		ModTime: n.modTime,
		ATime:   n.atime,
	}
}

// ReadDir lists the entries of directory p sorted by name.
func (fs *FS) ReadDir(p string) ([]Info, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.typ != TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Info, len(names))
	base := clean(p)
	if base == "/" {
		base = ""
	}
	for i, name := range names {
		out[i] = fs.info(base+"/"+name, n.children[name])
	}
	return out, nil
}

// Remove unlinks the file or empty directory at p.
func (fs *FS) Remove(p string) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := parent.children[leaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if n.typ == TypeDir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	delete(parent.children, leaf)
	parent.modTime = fs.now()
	fs.memoDir, fs.memoNode = "", nil
	fs.drop(n)
	return nil
}

// RemoveAll removes p and everything below it. Removing a missing path
// is not an error.
func (fs *FS) RemoveAll(p string) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	n, ok := parent.children[leaf]
	if !ok {
		return nil
	}
	delete(parent.children, leaf)
	parent.modTime = fs.now()
	fs.memoDir, fs.memoNode = "", nil
	fs.dropTree(n)
	return nil
}

func (fs *FS) drop(n *node) {
	n.nlink--
	if n.nlink > 0 {
		return
	}
	fs.byID[n.id] = nil
	if n.typ == TypeDir {
		fs.ndirs--
	} else {
		fs.nfiles--
	}
}

func (fs *FS) dropTree(n *node) {
	if n.typ == TypeDir {
		for _, child := range n.children {
			fs.dropTree(child)
		}
	}
	fs.drop(n)
}

// Rename moves oldp to newp. An existing file (not directory) at newp
// is replaced, as in POSIX rename.
func (fs *FS) Rename(oldp, newp string) error {
	oparent, oleaf, err := fs.lookupParent(oldp)
	if err != nil {
		return err
	}
	n, ok := oparent.children[oleaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldp)
	}
	nparent, nleaf, err := fs.lookupParent(newp)
	if err != nil {
		return err
	}
	if existing, ok := nparent.children[nleaf]; ok {
		if existing == n {
			return nil
		}
		if existing.typ == TypeDir {
			if len(existing.children) > 0 {
				return fmt.Errorf("%w: %s", ErrNotEmpty, newp)
			}
		} else if n.typ == TypeDir {
			return fmt.Errorf("%w: %s", ErrNotDir, newp)
		}
		fs.drop(existing)
	}
	delete(oparent.children, oleaf)
	nparent.children[nleaf] = n
	oparent.modTime = fs.now()
	nparent.modTime = fs.now()
	fs.memoDir, fs.memoNode = "", nil
	return nil
}

// SetXattr sets a named extended attribute on p. An empty value deletes
// the attribute.
func (fs *FS) SetXattr(p, key, value string) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	if value == "" {
		delete(n.xattrs, key)
		return nil
	}
	if n.xattrs == nil {
		n.xattrs = make(map[string]string)
	}
	n.xattrs[key] = value
	return nil
}

// GetXattr reads a named extended attribute of p ("" if absent).
func (fs *FS) GetXattr(p, key string) (string, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return "", err
	}
	return n.xattrs[key], nil
}

// Exists reports whether p resolves.
func (fs *FS) Exists(p string) bool {
	_, err := fs.lookup(p)
	return err == nil
}

// WalkFunc visits one inode during Walk. Returning a non-nil error
// stops the walk and propagates the error.
type WalkFunc func(info Info) error

// Walk visits p and everything below it in deterministic depth-first
// order (directories before their sorted children).
func (fs *FS) Walk(p string, fn WalkFunc) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	return fs.walk(clean(p), n, fn, false)
}

// WalkLean is Walk without the per-inode xattr copy: every Info is
// delivered with a nil Xattrs map. Housekeeping walks that only need
// identities, sizes and types (tree-removal accounting over millions of
// stubbed files, each carrying HSM xattrs) skip a map allocation per
// inode.
func (fs *FS) WalkLean(p string, fn WalkFunc) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	return fs.walk(clean(p), n, fn, true)
}

func (fs *FS) walk(p string, n *node, fn WalkFunc, lean bool) error {
	var err error
	if lean {
		err = fn(fs.infoLean(p, n))
	} else {
		err = fn(fs.info(p, n))
	}
	if err != nil {
		return err
	}
	if n.typ != TypeDir {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	base := p
	if base == "/" {
		base = ""
	}
	for _, name := range names {
		if err := fs.walk(base+"/"+name, n.children[name], fn, lean); err != nil {
			return err
		}
	}
	return nil
}

// VisitTree calls fn(id, size, dir) for every inode under p, p itself
// included, without constructing paths or Infos — the allocation-free
// enumeration backing bulk-removal accounting. Visit order is
// unspecified (callers must be order-insensitive; size and identity
// accounting is).
func (fs *FS) VisitTree(p string, fn func(id FileID, size int64, dir bool)) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	fs.visitTree(n, fn)
	return nil
}

func (fs *FS) visitTree(n *node, fn func(id FileID, size int64, dir bool)) {
	fn(n.id, n.size, n.typ == TypeDir)
	for _, c := range n.children {
		fs.visitTree(c, fn)
	}
}

// TotalBytes sums the sizes of all regular files.
func (fs *FS) TotalBytes() int64 {
	var total int64
	_ = fs.Walk("/", func(info Info) error {
		if !info.IsDir() {
			total += info.Size
		}
		return nil
	})
	return total
}
