// Package vfs implements an in-memory POSIX-like file tree used as the
// namespace layer of the simulated parallel file systems. It supplies
// inodes with stable file IDs (the GPFS-style unique identifier the
// synchronous deleter depends on), directories, rename/unlink/truncate,
// extended attributes (used by the HSM layer for stub state), and
// deterministic sorted directory listings.
//
// File data is a synthetic.Content, so files of any size cost O(extents)
// of memory. vfs carries no timing model: timing belongs to the pfs and
// device layers above it.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"repro/internal/synthetic"
)

// Errors returned by FS operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrInvalid  = errors.New("vfs: invalid argument")
)

// FileID is the per-filesystem unique identifier of an inode. It never
// changes across renames and is never reused, mirroring the GPFS file
// ID the paper's synchronous deleter looks up.
type FileID uint64

// FileType distinguishes inode kinds.
type FileType int

// Inode kinds.
const (
	TypeFile FileType = iota
	TypeDir
)

func (t FileType) String() string {
	if t == TypeDir {
		return "dir"
	}
	return "file"
}

// Info is the stat result for an inode.
type Info struct {
	Name    string
	Path    string
	ID      FileID
	Type    FileType
	Size    int64
	ModTime time.Duration // virtual time
	ATime   time.Duration // virtual time of last data read
	Xattrs  map[string]string
}

// IsDir reports whether the inode is a directory.
func (i Info) IsDir() bool { return i.Type == TypeDir }

type node struct {
	id       FileID
	typ      FileType
	size     int64
	modTime  time.Duration
	atime    time.Duration
	content  synthetic.Content
	children map[string]*node // directories only
	xattrs   map[string]string
	nlink    int // reference count from directory entries
}

// FS is a single in-memory file tree. FS methods are not safe for
// concurrent use from multiple OS threads; in simulation exactly one
// actor runs at a time, so no locking is needed or provided.
type FS struct {
	name   string
	root   *node
	nextID FileID
	byID   map[FileID]*node
	now    func() time.Duration
	nfiles int
	ndirs  int
}

// New creates an empty file system. now supplies virtual timestamps and
// may be nil (timestamps then stay zero).
func New(name string, now func() time.Duration) *FS {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	fs := &FS{name: name, now: now, byID: make(map[FileID]*node)}
	fs.root = fs.newNode(TypeDir)
	fs.ndirs = 1
	return fs
}

// Name reports the file system's label.
func (fs *FS) Name() string { return fs.name }

// NumFiles reports the number of regular files.
func (fs *FS) NumFiles() int { return fs.nfiles }

// NumDirs reports the number of directories (including the root).
func (fs *FS) NumDirs() int { return fs.ndirs }

// NumInodes reports the total inode count.
func (fs *FS) NumInodes() int { return fs.nfiles + fs.ndirs }

func (fs *FS) newNode(t FileType) *node {
	fs.nextID++
	n := &node{id: fs.nextID, typ: t, modTime: fs.now(), nlink: 1}
	if t == TypeDir {
		n.children = make(map[string]*node)
	}
	fs.byID[n.id] = n
	return n
}

// clean canonicalizes p to a rooted slash path.
func clean(p string) string {
	p = path.Clean("/" + p)
	return p
}

// lookup resolves p to its node.
func (fs *FS) lookup(p string) (*node, error) {
	p = clean(p)
	if p == "/" {
		return fs.root, nil
	}
	cur := fs.root
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if cur.typ != TypeDir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		cur = next
	}
	return cur, nil
}

// lookupParent resolves the parent directory of p and the leaf name.
func (fs *FS) lookupParent(p string) (*node, string, error) {
	p = clean(p)
	if p == "/" {
		return nil, "", fmt.Errorf("%w: cannot address root's parent", ErrInvalid)
	}
	dir, leaf := path.Split(p)
	parent, err := fs.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.typ != TypeDir {
		return nil, "", fmt.Errorf("%w: %s", ErrNotDir, dir)
	}
	return parent, leaf, nil
}

// Mkdir creates a single directory. The parent must exist.
func (fs *FS) Mkdir(p string) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	if _, ok := parent.children[leaf]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	parent.children[leaf] = fs.newNode(TypeDir)
	parent.modTime = fs.now()
	fs.ndirs++
	return nil
}

// MkdirAll creates p and any missing ancestors.
func (fs *FS) MkdirAll(p string) error {
	p = clean(p)
	if p == "/" {
		return nil
	}
	cur := fs.root
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		next, ok := cur.children[part]
		if !ok {
			next = fs.newNode(TypeDir)
			cur.children[part] = next
			cur.modTime = fs.now()
			fs.ndirs++
		} else if next.typ != TypeDir {
			return fmt.Errorf("%w: %s", ErrNotDir, part)
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces the regular file at p with content.
func (fs *FS) WriteFile(p string, content synthetic.Content) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	existing, ok := parent.children[leaf]
	if ok {
		if existing.typ == TypeDir {
			return fmt.Errorf("%w: %s", ErrIsDir, p)
		}
		existing.content = content
		existing.size = content.Len()
		existing.modTime = fs.now()
		return nil
	}
	n := fs.newNode(TypeFile)
	n.content = content
	n.size = content.Len()
	parent.children[leaf] = n
	parent.modTime = fs.now()
	fs.nfiles++
	return nil
}

// ReadFile returns the content of the regular file at p, updating its
// access time (the signal ILM age/frequency policies consume).
func (fs *FS) ReadFile(p string) (synthetic.Content, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return synthetic.Content{}, err
	}
	if n.typ == TypeDir {
		return synthetic.Content{}, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	n.atime = fs.now()
	return n.content, nil
}

// WriteAt overwrites [off, off+data.Len()) of the file at p, extending
// the file with the data if it writes at exactly EOF.
func (fs *FS) WriteAt(p string, off int64, data synthetic.Content) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	if n.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	switch {
	case off == n.size:
		n.content = synthetic.Concat(n.content, data)
	case off+data.Len() <= n.size:
		n.content = n.content.Overwrite(off, data)
	case off < n.size:
		// Straddles EOF: truncate then append.
		n.content = synthetic.Concat(n.content.Truncate(off), data)
	default:
		return fmt.Errorf("%w: sparse write at %d past size %d", ErrInvalid, off, n.size)
	}
	n.size = n.content.Len()
	n.modTime = fs.now()
	return nil
}

// Truncate cuts the file at p to length (which must not exceed the
// current size).
func (fs *FS) Truncate(p string, length int64) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	if n.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if length < 0 || length > n.size {
		return fmt.Errorf("%w: truncate to %d of %d", ErrInvalid, length, n.size)
	}
	n.content = n.content.Truncate(length)
	n.size = length
	n.modTime = fs.now()
	return nil
}

// Stat returns the Info for p.
func (fs *FS) Stat(p string) (Info, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return Info{}, err
	}
	return fs.info(clean(p), n), nil
}

// StatID returns the Info for a file ID, with an empty Path (IDs are
// path-independent).
func (fs *FS) StatID(id FileID) (Info, error) {
	n, ok := fs.byID[id]
	if !ok {
		return Info{}, fmt.Errorf("%w: id %d", ErrNotExist, id)
	}
	return fs.info("", n), nil
}

func (fs *FS) info(p string, n *node) Info {
	var xa map[string]string
	if len(n.xattrs) > 0 {
		xa = make(map[string]string, len(n.xattrs))
		for k, v := range n.xattrs {
			xa[k] = v
		}
	}
	return Info{
		Name:    path.Base(p),
		Path:    p,
		ID:      n.id,
		Type:    n.typ,
		Size:    n.size,
		ModTime: n.modTime,
		ATime:   n.atime,
		Xattrs:  xa,
	}
}

// ReadDir lists the entries of directory p sorted by name.
func (fs *FS) ReadDir(p string) ([]Info, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.typ != TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Info, len(names))
	base := clean(p)
	for i, name := range names {
		out[i] = fs.info(path.Join(base, name), n.children[name])
	}
	return out, nil
}

// Remove unlinks the file or empty directory at p.
func (fs *FS) Remove(p string) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := parent.children[leaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if n.typ == TypeDir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	delete(parent.children, leaf)
	parent.modTime = fs.now()
	fs.drop(n)
	return nil
}

// RemoveAll removes p and everything below it. Removing a missing path
// is not an error.
func (fs *FS) RemoveAll(p string) error {
	parent, leaf, err := fs.lookupParent(p)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	n, ok := parent.children[leaf]
	if !ok {
		return nil
	}
	delete(parent.children, leaf)
	parent.modTime = fs.now()
	fs.dropTree(n)
	return nil
}

func (fs *FS) drop(n *node) {
	n.nlink--
	if n.nlink > 0 {
		return
	}
	delete(fs.byID, n.id)
	if n.typ == TypeDir {
		fs.ndirs--
	} else {
		fs.nfiles--
	}
}

func (fs *FS) dropTree(n *node) {
	if n.typ == TypeDir {
		for _, child := range n.children {
			fs.dropTree(child)
		}
	}
	fs.drop(n)
}

// Rename moves oldp to newp. An existing file (not directory) at newp
// is replaced, as in POSIX rename.
func (fs *FS) Rename(oldp, newp string) error {
	oparent, oleaf, err := fs.lookupParent(oldp)
	if err != nil {
		return err
	}
	n, ok := oparent.children[oleaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldp)
	}
	nparent, nleaf, err := fs.lookupParent(newp)
	if err != nil {
		return err
	}
	if existing, ok := nparent.children[nleaf]; ok {
		if existing == n {
			return nil
		}
		if existing.typ == TypeDir {
			if len(existing.children) > 0 {
				return fmt.Errorf("%w: %s", ErrNotEmpty, newp)
			}
		} else if n.typ == TypeDir {
			return fmt.Errorf("%w: %s", ErrNotDir, newp)
		}
		fs.drop(existing)
	}
	delete(oparent.children, oleaf)
	nparent.children[nleaf] = n
	oparent.modTime = fs.now()
	nparent.modTime = fs.now()
	return nil
}

// SetXattr sets a named extended attribute on p. An empty value deletes
// the attribute.
func (fs *FS) SetXattr(p, key, value string) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	if value == "" {
		delete(n.xattrs, key)
		return nil
	}
	if n.xattrs == nil {
		n.xattrs = make(map[string]string)
	}
	n.xattrs[key] = value
	return nil
}

// GetXattr reads a named extended attribute of p ("" if absent).
func (fs *FS) GetXattr(p, key string) (string, error) {
	n, err := fs.lookup(p)
	if err != nil {
		return "", err
	}
	return n.xattrs[key], nil
}

// Exists reports whether p resolves.
func (fs *FS) Exists(p string) bool {
	_, err := fs.lookup(p)
	return err == nil
}

// WalkFunc visits one inode during Walk. Returning a non-nil error
// stops the walk and propagates the error.
type WalkFunc func(info Info) error

// Walk visits p and everything below it in deterministic depth-first
// order (directories before their sorted children).
func (fs *FS) Walk(p string, fn WalkFunc) error {
	n, err := fs.lookup(p)
	if err != nil {
		return err
	}
	return fs.walk(clean(p), n, fn)
}

func (fs *FS) walk(p string, n *node, fn WalkFunc) error {
	if err := fn(fs.info(p, n)); err != nil {
		return err
	}
	if n.typ != TypeDir {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := fs.walk(path.Join(p, name), n.children[name], fn); err != nil {
			return err
		}
	}
	return nil
}

// TotalBytes sums the sizes of all regular files.
func (fs *FS) TotalBytes() int64 {
	var total int64
	_ = fs.Walk("/", func(info Info) error {
		if !info.IsDir() {
			total += info.Size
		}
		return nil
	})
	return total
}
