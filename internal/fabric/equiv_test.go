package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/simtime"
)

// churnResult captures everything observable about one scripted churn
// run: when each flow finished (virtual time) and what every link
// carried. Two runs of the same script must produce identical results
// regardless of scheduler mode.
type churnResult struct {
	done      []simtime.Duration
	linkBytes map[string]float64
	linkBusy  map[string]time.Duration
}

// runChurn executes a randomized but fully seeded churn script — a
// random multi-hub topology, a mix of one-shot transfers (some capped,
// some via detours) and persistent streams with staggered sends — and
// returns the observable outcome.
func runChurn(seed int64, full bool) churnResult {
	r := rand.New(rand.NewSource(seed))
	c := simtime.NewClock()
	f := New(c)
	f.SetFullRecompute(full)

	hubs := r.Intn(3) + 2
	var hosts []string
	for h := 0; h < hubs; h++ {
		hub := fmt.Sprintf("hub%d", h)
		if h > 0 {
			f.AddLink(fmt.Sprintf("core%d", h), float64(r.Intn(900)+100),
				fmt.Sprintf("hub%d", h-1), hub)
		}
		for s := 0; s < r.Intn(3)+1; s++ {
			host := fmt.Sprintf("h%d_%d", h, s)
			f.AddLink(host+"-nic", float64(r.Intn(400)+50), hub, host)
			hosts = append(hosts, host)
		}
	}

	n := r.Intn(10) + 6
	res := churnResult{
		done:      make([]simtime.Duration, n),
		linkBytes: make(map[string]float64),
		linkBusy:  make(map[string]time.Duration),
	}
	for i := 0; i < n; i++ {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src == dst {
			res.done[i] = -1
			continue
		}
		via := ""
		if r.Intn(4) == 0 {
			via = hosts[r.Intn(len(hosts))]
		}
		p, err := f.Route(src, via, dst)
		if err != nil {
			panic(err)
		}
		start := simtime.Duration(r.Intn(8000)) * time.Millisecond
		var opts []Option
		if r.Intn(3) == 0 {
			opts = append(opts, WithCap(float64(r.Intn(700)+40)))
		}
		i := i
		if r.Intn(2) == 0 {
			// One-shot transfer.
			bytes := int64(r.Intn(60_000) + 200)
			c.Go(func() {
				c.Sleep(start)
				f.Transfer(p, bytes, opts...)
				res.done[i] = c.Now()
			})
		} else {
			// Persistent stream: several sends with gaps between them,
			// exercising idle/active transitions and stream finalize.
			sends := r.Intn(4) + 1
			var chunks []int64
			var gaps []simtime.Duration
			for s := 0; s < sends; s++ {
				chunks = append(chunks, int64(r.Intn(20_000)+100))
				gaps = append(gaps, simtime.Duration(r.Intn(1500))*time.Millisecond)
			}
			c.Go(func() {
				c.Sleep(start)
				st := f.Stream(p, opts...)
				for s := range chunks {
					st.Send(chunks[s])
					c.Sleep(gaps[s])
				}
				st.Close()
				st.Wait()
				res.done[i] = c.Now()
			})
		}
	}
	c.RunFor()
	for _, l := range f.Links() {
		st := l.Stats()
		res.linkBytes[st.Name] = st.Bytes
		res.linkBusy[st.Name] = st.Busy
	}
	return res
}

// TestIncrementalMatchesFullRecompute is the scheduler-mode
// equivalence property: the incremental component-local max-min solver
// must be observationally identical — bit-exact completion times and
// link counters — to the brute-force solve-everything-on-every-event
// mode (FABRIC_FULL_RECOMPUTE). The incremental mode is purely a
// wall-clock optimization; any divergence is a bug in its component
// seeding or settle logic.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seed := int64(trial)*104729 + 17
		inc := runChurn(seed, false)
		ref := runChurn(seed, true)
		for i := range ref.done {
			if inc.done[i] != ref.done[i] {
				t.Errorf("trial %d flow %d: incremental finished at %v, full recompute at %v",
					trial, i, inc.done[i], ref.done[i])
			}
		}
		for name, want := range ref.linkBytes {
			if got := inc.linkBytes[name]; got != want {
				t.Errorf("trial %d link %s: incremental carried %v bytes, full recompute %v",
					trial, name, got, want)
			}
		}
		for name, want := range ref.linkBusy {
			if got := inc.linkBusy[name]; got != want {
				t.Errorf("trial %d link %s: incremental busy %v, full recompute %v",
					trial, name, got, want)
			}
		}
	}
}

// TestStreamMatchesOneShotFlow checks that a persistent stream carrying
// chunks back-to-back is physically identical to one flow carrying
// their sum: same completion time, same link bytes. Streams exist so
// small-file workloads don't churn a flow per file; they must not
// change what the fabric simulates.
func TestStreamMatchesOneShotFlow(t *testing.T) {
	chunkSets := [][]int64{
		{1000},
		{4096, 4096, 4096},
		{100, 50_000, 7, 1234, 999},
	}
	for ci, chunks := range chunkSets {
		var total int64
		for _, n := range chunks {
			total += n
		}

		run := func(streamed bool) (simtime.Duration, float64) {
			c := simtime.NewClock()
			f := New(c)
			f.AddLink("nic-a", 300, "a", "sw")
			f.AddLink("nic-b", 200, "sw", "b")
			var done simtime.Duration
			c.Go(func() {
				p, err := f.Route("a", "", "b")
				if err != nil {
					panic(err)
				}
				if streamed {
					st := f.Stream(p)
					for _, n := range chunks {
						st.Send(n)
					}
					st.Close()
					st.Wait()
				} else {
					f.Transfer(p, total)
				}
				done = c.Now()
			})
			c.RunFor()
			return done, f.Link("nic-b").Stats().Bytes
		}

		sDone, sBytes := run(true)
		oDone, oBytes := run(false)
		// Each chunk completion rounds its timer up to the next
		// nanosecond, so a stream of k chunks may finish up to k ns
		// after the single flow — quantization, not physics.
		tol := simtime.Duration(len(chunks)) * time.Nanosecond
		if diff := sDone - oDone; diff < -tol || diff > tol {
			t.Errorf("chunks %d: stream finished at %v, one-shot flow at %v (tolerance %v)", ci, sDone, oDone, tol)
		}
		if math.Abs(sBytes-oBytes) > 1e-6 {
			t.Errorf("chunks %d: stream carried %v bytes, one-shot flow %v", ci, sBytes, oBytes)
		}
	}
}
