package fabric

import (
	"encoding/json"
	"fmt"

	"repro/internal/simtime"
)

// Checkpoint codec: the fabric's durable state is per-link accounting
// plus a couple of allocator counters. Everything else (solver scratch,
// crossing lists, the completion timer) is transient flow state, and
// checkpoints are only cut at quiescent instants — SaveState refuses
// while any flow is active, because an in-flight flow's completion
// callback lives on an actor stack that cannot be serialized.

// savedLink is one link's accounting in the codec payload. Topology
// (endpoints, adjacency) is NOT saved: the restoring plant rebuilds the
// same graph from code, and links are matched by name.
type savedLink struct {
	Name      string           `json:"name"`
	Capacity  float64          `json:"capacity"`
	Nominal   float64          `json:"nominal"`
	LatencyNs int64            `json:"latency_ns,omitempty"`
	Bytes     float64          `json:"bytes"`
	BusyNs    int64            `json:"busy_ns"`
	Peak      int              `json:"peak"`
	WidthNs   int64            `json:"width_ns,omitempty"`
	Timeline  []savedTimePoint `json:"timeline,omitempty"`
	CorruptQ  []uint64         `json:"corrupt_q,omitempty"`
}

type savedTimePoint struct {
	AtNs   int64   `json:"at_ns"`
	Bytes  float64 `json:"bytes"`
	BusyNs int64   `json:"busy_ns"`
}

// savedFabric is the codec payload.
type savedFabric struct {
	Links []savedLink `json:"links"`
	Seq   uint64      `json:"seq"`
	Gen   uint64      `json:"gen"`
}

// SaveState serializes the fabric's accounting. It errors while flows
// are active: quiesce the plant first.
func (f *Fabric) SaveState() (json.RawMessage, error) {
	if n := len(f.flows); n > 0 {
		return nil, fmt.Errorf("fabric: %d flow(s) still active at checkpoint", n)
	}
	s := savedFabric{Seq: f.seq, Gen: f.gen}
	for _, l := range f.order {
		sl := savedLink{
			Name: l.name, Capacity: l.capacity, Nominal: l.nominal,
			LatencyNs: int64(l.latency),
			Bytes:     l.bytes, BusyNs: int64(l.busy), Peak: l.peak,
			WidthNs: int64(l.width),
		}
		for _, p := range l.timeline {
			sl.Timeline = append(sl.Timeline, savedTimePoint{
				AtNs: int64(p.At), Bytes: p.Bytes, BusyNs: int64(p.Busy),
			})
		}
		if len(l.corruptQ) > 0 {
			sl.CorruptQ = append([]uint64(nil), l.corruptQ...)
		}
		s.Links = append(s.Links, sl)
	}
	return json.Marshal(s)
}

// LoadState replays a SaveState payload onto a rebuilt fabric. Links
// are matched by name; the restoring plant must have constructed the
// same topology, and a saved link with no counterpart is an error (a
// silent skip would resume with rewound counters).
func (f *Fabric) LoadState(data json.RawMessage) error {
	var s savedFabric
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	for _, sl := range s.Links {
		l, ok := f.links[sl.Name]
		if !ok {
			return fmt.Errorf("fabric: restore found no link %q — plant topology mismatch", sl.Name)
		}
		l.capacity = sl.Capacity
		l.nominal = sl.Nominal
		l.latency = simtime.Duration(sl.LatencyNs)
		l.bytes = sl.Bytes
		l.busy = simtime.Duration(sl.BusyNs)
		l.peak = sl.Peak
		l.width = simtime.Duration(sl.WidthNs)
		l.timeline = nil
		for _, p := range sl.Timeline {
			l.timeline = append(l.timeline, TimePoint{
				At: simtime.Duration(p.AtNs), Bytes: p.Bytes, Busy: simtime.Duration(p.BusyNs),
			})
		}
		l.corruptQ = append([]uint64(nil), sl.CorruptQ...)
	}
	f.seq = s.Seq
	f.gen = s.Gen
	// Accounting resumes from the restored instant; without this the
	// first settle would charge busy time back to virtual zero.
	f.last = f.clock.Now()
	return nil
}

// RegisterCheckpoint wires the clock's fabric into the simtime
// checkpoint framework under the component name "fabric". Call it once
// per island after constructing the plant (not from inside a SlotOf
// constructor).
func RegisterCheckpoint(clock *simtime.Clock) {
	f := Of(clock)
	clock.OnSnapshot("fabric", f.SaveState, f.LoadState)
}
