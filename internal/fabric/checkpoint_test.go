package fabric

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func buildWANFabric(clock *simtime.Clock) *Fabric {
	f := Of(clock)
	f.AddLink("lan", 1000, "src", "edge")
	f.AddLink("wan", 100, "edge", "far").SetLatency(simtime.Duration(50 * time.Millisecond))
	return f
}

func TestPathLookahead(t *testing.T) {
	clock := simtime.NewClock()
	f := buildWANFabric(clock)
	p, err := f.Route("src", "", "far")
	if err != nil {
		t.Fatal(err)
	}
	// Latency sum 50ms; fastest hop nominal 1000 B/s carries a 100-byte
	// quantum in 100ms.
	want := simtime.Duration(150 * time.Millisecond)
	if got := p.Lookahead(100); got != want {
		t.Errorf("Lookahead(100) = %v, want %v", got, want)
	}
	if got := p.Lookahead(0); got != simtime.Duration(50*time.Millisecond) {
		t.Errorf("Lookahead(0) = %v, want 50ms", got)
	}
	// Degrading a link must not shrink the bound (nominal is used).
	f.Link("lan").Scale(0.1)
	if got := p.Lookahead(100); got != want {
		t.Errorf("degraded Lookahead(100) = %v, want %v", got, want)
	}
}

func TestFabricCheckpointRoundTrip(t *testing.T) {
	clock := simtime.NewClock()
	f := buildWANFabric(clock)
	clock.Go(func() {
		p, err := f.Route("src", "", "far")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			p.Transfer(10_000)
			clock.Sleep(simtime.Duration(time.Minute))
		}
	})
	if _, err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	f.Link("wan").ArmCorrupt(42)
	data, err := f.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	clock2 := simtime.NewClock()
	f2 := buildWANFabric(clock2)
	if err := f2.LoadState(data); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lan", "wan"} {
		a, b := f.Link(name).Stats(), f2.Link(name).Stats()
		if a.Bytes != b.Bytes || a.Busy != b.Busy || a.PeakFlows != b.PeakFlows ||
			a.Capacity != b.Capacity || a.Nominal != b.Nominal || len(a.Timeline) != len(b.Timeline) {
			t.Errorf("link %s stats differ after restore:\n%+v\n%+v", name, a, b)
		}
	}
	if got := f2.Link("wan").Latency(); got != simtime.Duration(50*time.Millisecond) {
		t.Errorf("restored latency = %v", got)
	}
	if got := f2.Link("wan").ArmedCorruptions(); got != 1 {
		t.Errorf("restored armed corruptions = %d, want 1", got)
	}
}

func TestFabricCheckpointRefusesActiveFlows(t *testing.T) {
	clock := simtime.NewClock()
	f := buildWANFabric(clock)
	clock.Go(func() {
		p, _ := f.Route("src", "", "far")
		// ~10.5k virtual seconds over the 100 B/s wan hop: still in
		// flight when the checkpoint attempt fires at t=1s.
		p.Transfer(1 << 20)
	})
	clock.Go(func() {
		clock.Sleep(simtime.Duration(time.Second))
		if _, err := f.SaveState(); err == nil {
			t.Error("SaveState accepted an active flow")
		}
	})
	clock.Run() // the huge transfer eventually completes; ignore result
}

func TestFabricCheckpointTopologyMismatch(t *testing.T) {
	clock := simtime.NewClock()
	f := buildWANFabric(clock)
	data, err := f.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	clock2 := simtime.NewClock()
	f2 := Of(clock2)
	f2.AddLink("lan", 1000, "src", "edge") // "wan" missing
	if err := f2.LoadState(data); err == nil {
		t.Fatal("LoadState accepted a snapshot with an unknown link")
	}
}
