package fabric

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoHandAssembledPipePaths enforces the fabric migration: the data
// movers (pftool, hsm, tsm) must resolve routes through fabric.Route
// instead of hand-assembling []*simtime.Pipe hop slices. Three layers
// once duplicated that assembly; a regression reintroducing a fourth
// copy fails here.
func TestNoHandAssembledPipePaths(t *testing.T) {
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range []string{"pftool", "hsm", "tsm"} {
		dir := filepath.Join(root, pkg)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range ents {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(src), "[]*simtime.Pipe{") {
				t.Errorf("%s/%s hand-assembles a pipe path; use fabric.Route instead", pkg, name)
			}
		}
	}
}
