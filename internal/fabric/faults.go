package fabric

import (
	"strings"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// BindFaults subscribes the fabric to a fault registry: every
// "link:<name>" event is applied to the named link by one hook, so
// schedules drive degradation and repair by link name instead of
// reaching for raw pipes.
//
//	KindDegrade  capacity scales to Param x nominal
//	KindFail     capacity drops to a 1% crawl — a fully dead link would
//	             wedge in-flight flows forever; a crawl lets traffic drain
//	KindRepair   capacity restores to nominal
//	KindCorrupt  arms Param (>= 1) silent in-flight corruptions: the next
//	             flows to start across the link are tainted at full speed
//
// Corruptions are tagged with the provoking fault's telemetry event ID
// (the registry records the fault event before dispatchers run), so a
// later checksum-mismatch span can cite its cause. Events naming links
// this fabric does not own are ignored, so one schedule can drive
// several deployments.
func (f *Fabric) BindFaults(reg *faults.Registry) {
	reg.OnApply(func(ev faults.Event) {
		if !strings.HasPrefix(ev.Component, "link:") {
			return
		}
		l := f.Link(strings.TrimPrefix(ev.Component, "link:"))
		if l == nil {
			return
		}
		switch ev.Kind {
		case faults.KindDegrade:
			l.Scale(ev.Param)
		case faults.KindFail:
			l.Scale(0.01)
		case faults.KindRepair:
			l.Scale(1)
		case faults.KindCorrupt:
			cause, _ := telemetry.Of(f.clock).LastEventFor(ev.Component)
			n := int(ev.Param)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				l.ArmCorrupt(cause)
			}
		}
	})
}
