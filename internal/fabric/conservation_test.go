package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/simtime"
)

// TestConservationRandomTopologies is the fabric's conservation
// property, the coupled-flow analogue of the pipe property in
// internal/simtime/conservation_test.go: over random topologies and
// random flow arrivals,
//
//	(a) every link's byte counter equals the sum over flows of
//	    bytes x crossing multiplicity for the flows routed over it,
//	(b) no link carries bytes faster than its capacity allows — the
//	    link's bytes never exceed capacity x busy time,
//	(c) every flow completes with its full byte count accounted.
//
// The scheduler's max-min shares are an implementation detail; these
// invariants must hold for any work-conserving allocation.
func TestConservationRandomTopologies(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		r := rand.New(rand.NewSource(int64(trial) * 7919))
		c := simtime.NewClock()
		f := New(c)

		// Random hub-and-spoke topology with a shared core: every host
		// hangs off one of a few hubs, hubs chain through core links.
		// Spoke counts and capacities vary per trial.
		hubs := r.Intn(3) + 2
		var hosts []string
		for h := 0; h < hubs; h++ {
			hub := fmt.Sprintf("hub%d", h)
			if h > 0 {
				f.AddLink(fmt.Sprintf("core%d", h), float64(r.Intn(900)+100),
					fmt.Sprintf("hub%d", h-1), hub)
			}
			for s := 0; s < r.Intn(3)+1; s++ {
				host := fmt.Sprintf("h%d_%d", h, s)
				f.AddLink(host+"-nic", float64(r.Intn(400)+50), hub, host)
				hosts = append(hosts, host)
			}
		}

		type flowRec struct {
			path  Path
			bytes int64
		}
		var flows []flowRec
		n := r.Intn(12) + 3
		for i := 0; i < n; i++ {
			src := hosts[r.Intn(len(hosts))]
			dst := hosts[r.Intn(len(hosts))]
			if src == dst {
				continue
			}
			// A third of the flows bounce through a via host, producing
			// repeated links and crossing multiplicity > 1.
			via := ""
			if r.Intn(3) == 0 {
				via = hosts[r.Intn(len(hosts))]
			}
			p, err := f.Route(src, via, dst)
			if err != nil {
				t.Fatalf("trial %d: route %s->%s via %q: %v", trial, src, dst, via, err)
			}
			rec := flowRec{path: p, bytes: int64(r.Intn(90_000) + 100)}
			flows = append(flows, rec)
			start := simtime.Duration(r.Intn(10)) * time.Second
			c.Go(func() {
				c.Sleep(start)
				f.Transfer(rec.path, rec.bytes)
			})
		}
		end := c.RunFor()

		// (a) per-link accounting: carried bytes == sum of crossing
		// flows' bytes, counting multiplicity for repeated links.
		expect := make(map[*Link]float64)
		for _, rec := range flows {
			mult := make(map[*Link]int)
			for _, l := range rec.path.Links() {
				mult[l]++
			}
			for l, k := range mult {
				expect[l] += float64(rec.bytes) * float64(k)
			}
		}
		for _, l := range f.Links() {
			st := l.Stats()
			if math.Abs(st.Bytes-expect[l]) > 1 {
				t.Errorf("trial %d link %s: carried %.2f bytes, flows crossing it sum to %.2f",
					trial, st.Name, st.Bytes, expect[l])
			}
			// (b) capacity: a link busy for st.Busy at fixed capacity
			// cannot carry more than capacity x busy (slack for the
			// completion epsilon credited per finishing flow).
			slack := completionEps * float64(len(flows))
			if limit := st.Capacity*st.Busy.Seconds() + slack; st.Bytes > limit+1 {
				t.Errorf("trial %d link %s: carried %.2f bytes in %v busy at %.0f B/s (limit %.2f)",
					trial, st.Name, st.Bytes, st.Busy, st.Capacity, limit)
			}
		}

		// (c) nothing still in flight after the clock drains.
		for _, l := range f.Links() {
			if l.Active() != 0 {
				t.Errorf("trial %d link %s: %d flows still active at end %v", trial, l.Name(), l.Active(), end)
			}
		}
	}
}

// TestConservationUnderCapsAndArrivals stresses the same invariants
// with per-flow caps and staggered arrivals on one contended link, where
// the scheduler's freeze/unfreeze transitions are densest.
func TestConservationUnderCapsAndArrivals(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 31))
		c := simtime.NewClock()
		f := New(c)
		shared := f.AddLink("shared", 1000, "a", "b")
		var total int64
		n := r.Intn(8) + 2
		for i := 0; i < n; i++ {
			bytes := int64(r.Intn(50_000) + 500)
			total += bytes
			start := simtime.Duration(r.Intn(5000)) * time.Millisecond
			cap := float64(r.Intn(900) + 50)
			c.Go(func() {
				c.Sleep(start)
				p, err := f.Route("a", "", "b")
				if err != nil {
					panic(err)
				}
				f.Transfer(p, bytes, WithCap(cap))
			})
		}
		c.RunFor()
		st := shared.Stats()
		if math.Abs(st.Bytes-float64(total)) > 1 {
			t.Errorf("trial %d: shared link carried %.2f of %d bytes", trial, st.Bytes, total)
		}
		slack := completionEps * float64(n)
		if limit := st.Capacity*st.Busy.Seconds() + slack; st.Bytes > limit+1 {
			t.Errorf("trial %d: carried %.2f bytes, capacity x busy allows %.2f", trial, st.Bytes, limit)
		}
	}
}
