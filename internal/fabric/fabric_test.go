package fabric

import (
	"math"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// build creates the canonical two-hub topology used across the tests:
//
//	src ──array(1000)── compute ──trunk(300)── lan ──nicA(200)── a
//	                                            └───nicB(200)── b
func build(c *simtime.Clock) *Fabric {
	f := New(c)
	f.AddLink("array", 1000, "src", Compute)
	f.AddLink("trunk", 300, Compute, "lan")
	f.AddLink("nicA", 200, "lan", "a")
	f.AddLink("nicB", 200, "lan", "b")
	return f
}

func near(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestRouteResolvesHops(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	p, err := f.Route("src", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"array", "trunk", "nicA", "nicA", "nicB"}
	got := p.Names()
	if len(got) != len(want) {
		t.Fatalf("route = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("route = %v, want %v", got, want)
		}
	}
	if _, err := f.Route("src", "", "nowhere"); err == nil {
		t.Fatal("expected unknown-endpoint error")
	}
}

func TestRouteWirePreferred(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	f.Wire("a", Clients)
	f.AddLink("pool", 500, "fs:fast", Clients)
	p, err := f.Route("fs:fast", "a", "lan")
	if err != nil {
		t.Fatal(err)
	}
	// fs:fast -> clients (pool) -> a (wire, free) -> lan (nicA).
	got := p.Names()
	want := []string{"pool", "nicA"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("route = %v, want %v", got, want)
	}
}

func TestRouteAvoidRoutesAroundLinks(t *testing.T) {
	c := simtime.NewClock()
	f := New(c)
	// Triangle of WAN trunks: a direct east link and a two-hop detour
	// through west.
	f.AddLink("wan-east", 100, "site:A", "site:B")
	f.AddLink("wan-west", 100, "site:A", "site:C")
	f.AddLink("wan-south", 100, "site:C", "site:B")

	direct, err := f.RouteAvoid("site:A", "site:B", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := direct.Names(); len(got) != 1 || got[0] != "wan-east" {
		t.Fatalf("nil avoid route = %v, want [wan-east]", got)
	}

	dead := map[string]bool{"wan-east": true}
	detour, err := f.RouteAvoid("site:A", "site:B", func(l *Link) bool { return dead[l.Name()] })
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"wan-west", "wan-south"}
	got := detour.Names()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("avoiding route = %v, want %v", got, want)
	}

	dead["wan-west"] = true
	if _, err := f.RouteAvoid("site:A", "site:B", func(l *Link) bool { return dead[l.Name()] }); err == nil {
		t.Fatal("expected no-route error when every path is avoided")
	}
}

func TestSingleFlowBottleneck(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	c.Go(func() {
		p, _ := f.Route("src", "", "a")
		start := c.Now()
		f.Transfer(p, 600) // bottleneck nicA at 200 B/s -> 3s
		near(t, "duration", (c.Now() - start).Seconds(), 3.0, 0.01)
	})
	c.RunFor()
	// The flow ran at 200 B/s end to end: the fast hops carried only
	// what the bottleneck admitted, and every hop saw the same bytes.
	for _, name := range []string{"array", "trunk", "nicA"} {
		near(t, name+" bytes", f.Link(name).Stats().Bytes, 600, 1)
	}
	if f.Link("nicB").Stats().Bytes != 0 {
		t.Fatalf("nicB carried %v bytes, want 0", f.Link("nicB").Stats().Bytes)
	}
}

func TestMaxMinCoupledSharing(t *testing.T) {
	// Two flows share the trunk (300): each gets 150 until the flow to
	// "a" finishes, after which the survivor speeds up to 200 (its NIC).
	c := simtime.NewClock()
	f := build(c)
	var doneA, doneB simtime.Duration
	c.Go(func() {
		pa, _ := f.Route("src", "", "a")
		fl := f.Start(pa, 300) // 300 bytes at 150 B/s -> 2s
		fl.Wait()
		doneA = c.Now()
	})
	c.Go(func() {
		pb, _ := f.Route("src", "", "b")
		// 600 bytes: 2s at 150 (300 moved), then 300 left at 200 -> 1.5s.
		f.Transfer(pb, 600)
		doneB = c.Now()
	})
	c.RunFor()
	near(t, "flow A finish", doneA.Seconds(), 2.0, 0.01)
	near(t, "flow B finish", doneB.Seconds(), 3.5, 0.01)
	near(t, "trunk bytes", f.Link("trunk").Stats().Bytes, 900, 1)
	if got := f.Link("trunk").Stats().PeakFlows; got != 2 {
		t.Fatalf("trunk peak flows = %d, want 2", got)
	}
}

func TestPerFlowCap(t *testing.T) {
	// A capped flow leaves its unused share to the uncapped one: caps
	// participate in the max-min allocation instead of sleeping post hoc.
	c := simtime.NewClock()
	f := build(c)
	c.Go(func() {
		p, _ := f.Route("src", "", "a")
		start := c.Now()
		f.Transfer(p, 100, WithCap(50)) // 100 bytes at 50 B/s -> 2s
		near(t, "capped duration", (c.Now() - start).Seconds(), 2.0, 0.01)
	})
	c.Go(func() {
		p, _ := f.Route("src", "", "b")
		start := c.Now()
		// Trunk leaves 300-50=250, NIC B caps at 200: 400 bytes -> 2s.
		f.Transfer(p, 400)
		near(t, "uncapped duration", (c.Now() - start).Seconds(), 2.0, 0.01)
	})
	c.RunFor()
}

func TestCrossingMultiplicity(t *testing.T) {
	// A route crossing the same link twice consumes 2x its rate there:
	// a bounce through the NIC hub halves the effective bandwidth.
	c := simtime.NewClock()
	f := build(c)
	c.Go(func() {
		p, err := f.Route("a", "lan", "a") // nicA out and back
		if err != nil {
			t.Error(err)
			return
		}
		start := c.Now()
		f.Transfer(p, 200) // rate = 200/2 = 100 B/s -> 2s
		near(t, "bounce duration", (c.Now() - start).Seconds(), 2.0, 0.01)
	})
	c.RunFor()
	near(t, "nicA bytes", f.Link("nicA").Stats().Bytes, 400, 1)
}

func TestSetCapacityMidFlight(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	c.Go(func() {
		p, _ := f.Route("src", "", "a")
		start := c.Now()
		// 1s at 200, then the NIC halves: 200 left at 100 -> 2s more.
		f.Transfer(p, 400)
		near(t, "degraded duration", (c.Now() - start).Seconds(), 3.0, 0.01)
	})
	c.After(time.Second, func() { f.Link("nicA").Scale(0.5) })
	c.RunFor()
	if got := f.Link("nicA").Capacity(); got != 100 {
		t.Fatalf("capacity after scale = %v, want 100", got)
	}
	f.Link("nicA").Scale(1)
	if got := f.Link("nicA").Capacity(); got != 200 {
		t.Fatalf("capacity after repair = %v, want 200", got)
	}
}

func TestBindFaultsDrivesLinksByName(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	reg := faults.New(c, 1)
	f.BindFaults(reg)
	c.Go(func() {
		reg.Apply(faults.Event{Component: faults.LinkComponent("trunk"), Kind: faults.KindDegrade, Param: 0.5})
		if got := f.Link("trunk").Capacity(); got != 150 {
			t.Errorf("degraded trunk = %v, want 150", got)
		}
		reg.Apply(faults.Event{Component: faults.LinkComponent("trunk"), Kind: faults.KindFail})
		if got := f.Link("trunk").Capacity(); got != 3 {
			t.Errorf("failed trunk = %v, want 3 (1%% crawl)", got)
		}
		reg.Apply(faults.Event{Component: faults.LinkComponent("trunk"), Kind: faults.KindRepair})
		if got := f.Link("trunk").Capacity(); got != 300 {
			t.Errorf("repaired trunk = %v, want 300", got)
		}
		// Unknown links are ignored.
		reg.Apply(faults.Event{Component: faults.LinkComponent("elsewhere"), Kind: faults.KindFail})
	})
	c.RunFor()
}

func TestEmptyAndInstantFlows(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	c.Go(func() {
		p, err := f.Route("src", "", "src")
		if err != nil || !p.Empty() {
			t.Errorf("self route: %v, empty=%v", err, p.Empty())
		}
		start := c.Now()
		f.Transfer(p, 1e12) // empty path: instantaneous
		pa, _ := f.Route("src", "", "a")
		f.Transfer(pa, 0) // zero bytes: instantaneous
		if c.Now() != start {
			t.Errorf("instant flows advanced time by %v", c.Now()-start)
		}
	})
	c.RunFor()
}

func TestTransferredProgressSampling(t *testing.T) {
	// Pull-based progress: a single long flow reports bytes moved even
	// though it generates no settle events of its own.
	c := simtime.NewClock()
	f := build(c)
	var fl *Flow
	c.Go(func() {
		p, _ := f.Route("src", "", "a")
		fl = f.Start(p, 2000) // 200 B/s -> 10s
		fl.Wait()
	})
	c.After(3*time.Second, func() {
		got := fl.Transferred()
		if got < 590 || got > 610 {
			t.Errorf("Transferred at 3s = %d, want ~600", got)
		}
		if fl.Done() {
			t.Error("flow done at 3s")
		}
	})
	c.RunFor()
	if !fl.Done() || fl.Transferred() != 2000 {
		t.Fatalf("final: done=%v transferred=%d", fl.Done(), fl.Transferred())
	}
}

func TestDuplicateNamesUniquified(t *testing.T) {
	c := simtime.NewClock()
	f := New(c)
	a := f.AddLink("nic", 100, "x", "y")
	b := f.AddLink("nic", 100, "x", "z")
	if a.Name() != "nic" || b.Name() != "nic#2" {
		t.Fatalf("names = %q, %q; want nic, nic#2", a.Name(), b.Name())
	}
	if f.Link("nic") != a || f.Link("nic#2") != b {
		t.Fatal("lookup mismatch")
	}
}

func TestOfSharedPerClock(t *testing.T) {
	c1, c2 := simtime.NewClock(), simtime.NewClock()
	if Of(c1) != Of(c1) {
		t.Fatal("Of not stable per clock")
	}
	if Of(c1) == Of(c2) {
		t.Fatal("Of shared across clocks")
	}
}

func TestUtilizationAndBusy(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	c.Go(func() {
		p, _ := f.Route("src", "", "a")
		f.Transfer(p, 400) // 2s busy at full NIC rate
		c.Sleep(2 * time.Second)
	})
	end := c.RunFor()
	st := f.Link("nicA").Stats()
	near(t, "nicA utilization", st.Utilization(end), 0.5, 0.01) // 400 of 200*4
	near(t, "nicA busy fraction", st.BusyFraction(end), 0.5, 0.01)
}

func TestArmCorruptTaintsNextFlow(t *testing.T) {
	c := simtime.NewClock()
	f := build(c)
	reg := faults.New(c, 1)
	f.BindFaults(reg)
	tel := telemetry.Of(c)
	c.Go(func() {
		// Record the fault event first (as archive.InstallFaults does),
		// then apply: BindFaults picks the cause ID up from telemetry.
		evID := tel.Event("fault", "component", "link:trunk", "kind", "corrupt")
		reg.Apply(faults.Event{Component: "link:trunk", Kind: faults.KindCorrupt, Param: 2})
		if got := f.Link("trunk").ArmedCorruptions(); got != 2 {
			t.Errorf("armed = %d, want 2", got)
		}
		p, err := f.Route("src", "", "a")
		if err != nil {
			t.Fatal(err)
		}
		// First two flows tainted, third clean; capacity unaffected.
		for i := 0; i < 3; i++ {
			fl := f.Start(p, 1000)
			fl.Wait()
			cause, bad := fl.Tainted()
			if wantBad := i < 2; bad != wantBad {
				t.Errorf("flow %d tainted = %v, want %v", i, bad, wantBad)
			}
			if bad && cause != evID {
				t.Errorf("flow %d taint cause = %d, want %d", i, cause, evID)
			}
		}
		if got := f.Link("trunk").Capacity(); got != 300 {
			t.Errorf("corruption changed capacity to %g", got)
		}
		if got := f.Link("trunk").ArmedCorruptions(); got != 0 {
			t.Errorf("%d corruptions left armed", got)
		}
	})
	c.Run()
}
