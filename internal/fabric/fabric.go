// Package fabric is the data-path fabric of the deployment: one named
// topology graph of shared links (pool NSD arrays, the inter-system
// trunks, per-node NICs and HBAs, the TSM server LAN path) plus a
// coupled multi-hop flow scheduler. It replaces the hand-assembled
// []*simtime.Pipe data paths that pftool, hsm and tsm each used to
// build: callers resolve a Path with Route(src, via, dst) and move
// bytes with Transfer, and the scheduler sets every flow's rate by
// progressive-filling max-min fairness across every link the flow
// crosses — a flow bottlenecked at the trunk no longer consumes full
// fair share on the fast hops (the cut-through behaviour the paper's
// end-to-end bandwidth ceilings come from).
//
// Topology conventions (well-known endpoint names):
//
//	compute ──trunk── <cluster>-lan ──nic── ftaNN ──hba── san
//	                                          │
//	                                        (wire)
//	                                          │
//	clients ──pool link── <fs>:<pool>         │
//	   └──────────────────────────────────────┘
//
// File systems attach their pool links to the "clients" hub by default
// (archive-side: reachable from every node through a zero-cost wire);
// a scratch file system on the far side of the trunk attaches to
// "compute" instead, so pfcp routes cross the trunk and one NIC. The
// SAN side of each HBA meets at "san", where the tape drive heads live.
//
// All fabric state is mutated exclusively from simulation-actor
// context; the clock's single-actor execution serializes access, the
// same discipline every simtime primitive relies on.
package fabric

import (
	"fmt"
	"os"
	"time"

	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Well-known endpoint names the layers agree on.
const (
	// Clients is the hub where archive-side pool arrays and the FTA
	// nodes meet (a node reaches a locally mounted file system without
	// crossing its NIC, matching the paper's FTAs that mount both file
	// systems directly).
	Clients = "clients"
	// Compute is the far side of the inter-system trunk: the
	// supercomputer/scratch side of the deployment.
	Compute = "compute"
	// SAN is the storage-area-network side of every HBA: the tape
	// drives and archive disk arrays.
	SAN = "san"
)

// slot is the clock slot Of resolves; with one clock per island the
// fabric is automatically island-local (flows are solved per island,
// and cross-island transfers hand off at the channel boundary).
var slot = simtime.NewSlot()

func newForClock(clock *simtime.Clock) interface{} { return New(clock) }

// edge is one adjacency: a link between two endpoints, or a zero-cost
// wire (nil link) that BFS traverses for free.
type edge struct {
	to   string
	link *Link
}

// Fabric is one topology graph plus its flow scheduler.
type Fabric struct {
	clock *simtime.Clock
	adj   map[string][]edge
	links map[string]*Link
	order []*Link // insertion order: deterministic iteration

	flows []*Flow // active flows in arrival order
	seq   uint64
	gen   uint64 // completion-timer generation
	last  simtime.Duration

	cancelTimer *bool            // handle canceling the armed completion timer, if any
	timerAt     simtime.Duration // deadline of the armed timer (fastRearm's min)
	timerFn     func(uint64)     // standing onTimer method value (no per-rearm closure)

	// Incremental-recompute state: epoch stamps the component walk,
	// fullRecompute forces every component to re-solve on every event
	// (the FABRIC_FULL_RECOMPUTE debug mode), and the slices below are
	// reusable scratch so the hot path allocates nothing.
	epoch           uint64
	solveID         uint64 // distinguishes components gathered within one epoch
	fullRecompute   bool
	compFlows       []*Flow
	compLinks       []*Link
	scratchA        []*Flow
	scratchB        []*Flow
	seedLinks       []*Link
	drainQ          []*Flow // streams drained this instant, awaiting finalize
	finalizePending bool
	finalizeFn      func() // cached finalizeStreams method value

	// Flow counters, resolved lazily on first Start: New may run inside
	// clock.Attach (Of), where telemetry.Of would deadlock on the clock
	// mutex; Start always runs from plain actor context.
	ctrFlowsStarted   *telemetry.Counter
	ctrFlowsCompleted *telemetry.Counter
	ctrFlowsCorrupted *telemetry.Counter
}

// New creates an empty fabric on the clock. Most callers want Of, which
// shares one fabric per clock so independently constructed layers
// (cluster, file systems, TSM) compose onto the same graph.
func New(clock *simtime.Clock) *Fabric {
	return &Fabric{
		clock: clock,
		adj:   make(map[string][]edge),
		links: make(map[string]*Link),
		// The env switch turns every recompute into a full one, for
		// byte-identical cross-checks against the incremental scheduler.
		fullRecompute: os.Getenv("FABRIC_FULL_RECOMPUTE") != "",
	}
}

// Of returns the fabric shared by every component on the clock,
// creating it on first use. The lookup is allocation-free and
// lock-free after the first call (one atomic load).
func Of(clock *simtime.Clock) *Fabric {
	return clock.SlotOf(slot, newForClock).(*Fabric)
}

// Clock returns the simulation clock the fabric runs on.
func (f *Fabric) Clock() *simtime.Clock { return f.clock }

// AddLink creates a link of the given capacity (bytes/second) between
// endpoints a and b, registering the endpoints as needed. If the name
// is already taken a "#2", "#3", ... suffix is appended — parallel
// deployments on one clock (a second cluster, a federation of TSM
// servers) coexist without collisions; look the final name up via
// Link.Name. A link may be attached between further endpoint pairs
// with AttachLink, modelling a shared medium (one pool array serving
// every node).
func (f *Fabric) AddLink(name string, capacity float64, a, b string) *Link {
	if capacity <= 0 {
		panic("fabric: link capacity must be positive")
	}
	base := name
	for i := 2; ; i++ {
		if _, taken := f.links[name]; !taken {
			break
		}
		name = fmt.Sprintf("%s#%d", base, i)
	}
	l := &Link{fab: f, name: name, id: len(f.order), capacity: capacity, nominal: capacity}
	f.links[name] = l
	f.order = append(f.order, l)
	f.connect(a, b, l)
	// Emit the link's accounting through the telemetry registry as
	// snapshot-time collected series (the fabric already keeps these
	// numbers; settle() is idempotent, so collecting is free). AddLink
	// always runs outside clock.Attach constructors, unlike New.
	tel := telemetry.Of(f.clock)
	tel.CounterFunc("fabric_link_bytes_total", func() float64 {
		f.settle()
		return l.bytes
	}, "link", l.name)
	tel.CounterFunc("fabric_link_busy_seconds_total", func() float64 {
		f.settle()
		return l.busy.Seconds()
	}, "link", l.name)
	tel.GaugeFunc("fabric_link_capacity_bytes_per_second", func() float64 {
		return l.capacity
	}, "link", l.name)
	tel.GaugeFunc("fabric_link_nominal_bytes_per_second", func() float64 {
		return l.nominal
	}, "link", l.name)
	tel.GaugeFunc("fabric_link_active_flows", func() float64 {
		return float64(l.active)
	}, "link", l.name)
	tel.GaugeFunc("fabric_link_peak_flows", func() float64 {
		return float64(l.peak)
	}, "link", l.name)
	return l
}

// AttachLink attaches an existing link between a further endpoint pair:
// the same shared medium reachable from several places.
func (f *Fabric) AttachLink(l *Link, a, b string) {
	if l.fab != f {
		panic("fabric: AttachLink with a link from a different fabric")
	}
	f.connect(a, b, l)
}

// Wire joins two endpoints at zero cost: routes traverse it without
// crossing a link (e.g. an FTA node reaching the archive hub it is
// directly attached to).
func (f *Fabric) Wire(a, b string) { f.connect(a, b, nil) }

func (f *Fabric) connect(a, b string, l *Link) {
	f.adj[a] = append(f.adj[a], edge{to: b, link: l})
	f.adj[b] = append(f.adj[b], edge{to: a, link: l})
}

// Link returns the named link, or nil.
func (f *Fabric) Link(name string) *Link { return f.links[name] }

// Links returns every link in creation order.
func (f *Fabric) Links() []*Link {
	return append([]*Link(nil), f.order...)
}

// HasEndpoint reports whether the endpoint exists in the graph.
func (f *Fabric) HasEndpoint(name string) bool {
	_, ok := f.adj[name]
	return ok
}

// Route resolves the shortest path src -> via -> dst (fewest links;
// ties break deterministically by edge insertion order). An empty via
// routes src -> dst directly. The returned Path lists every link
// crossed, with repeats when both legs cross the same link.
func (f *Fabric) Route(src, via, dst string) (Path, error) {
	p := Path{fab: f, src: src, dst: dst}
	legs := [][2]string{{src, dst}}
	if via != "" && via != src && via != dst {
		legs = [][2]string{{src, via}, {via, dst}}
	}
	for _, leg := range legs {
		links, err := f.bfs(leg[0], leg[1], nil)
		if err != nil {
			return Path{}, err
		}
		p.links = append(p.links, links...)
	}
	return p, nil
}

// RouteAvoid resolves the fewest-link path src -> dst that crosses no
// link for which avoid reports true — WAN route selection around dead
// or partitioned links: a federation routes replication and failover
// traffic through surviving sites instead of crawling across a failed
// trunk. A nil avoid is plain Route. The error names both endpoints
// when every route is blocked (the partition case callers back off on).
func (f *Fabric) RouteAvoid(src, dst string, avoid func(*Link) bool) (Path, error) {
	links, err := f.bfs(src, dst, avoid)
	if err != nil {
		return Path{}, err
	}
	return Path{fab: f, src: src, dst: dst, links: links}, nil
}

// bfs finds the fewest-link path a -> b, returning the links crossed in
// order (wires contribute nothing). Links for which avoid reports true
// are not traversed (nil avoid admits every link).
func (f *Fabric) bfs(a, b string, avoid func(*Link) bool) ([]*Link, error) {
	if _, ok := f.adj[a]; !ok {
		return nil, fmt.Errorf("fabric: unknown endpoint %q", a)
	}
	if _, ok := f.adj[b]; !ok {
		return nil, fmt.Errorf("fabric: unknown endpoint %q", b)
	}
	if a == b {
		return nil, nil
	}
	type hop struct {
		from string
		via  *Link
	}
	prev := map[string]hop{a: {}}
	frontier := []string{a}
	found := false
	for len(frontier) > 0 && !found {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, e := range f.adj[cur] {
			if _, seen := prev[e.to]; seen {
				continue
			}
			if avoid != nil && e.link != nil && avoid(e.link) {
				continue
			}
			prev[e.to] = hop{from: cur, via: e.link}
			if e.to == b {
				found = true
				break
			}
			frontier = append(frontier, e.to)
		}
	}
	if !found {
		return nil, fmt.Errorf("fabric: no route from %q to %q", a, b)
	}
	var rev []*Link
	for at := b; at != a; {
		h := prev[at]
		if h.via != nil {
			rev = append(rev, h.via)
		}
		at = h.from
	}
	out := make([]*Link, len(rev))
	for i, l := range rev {
		out[len(rev)-1-i] = l
	}
	return out, nil
}

// Path is a resolved route: the ordered links a flow crosses.
type Path struct {
	fab      *Fabric
	src, dst string
	links    []*Link
}

// Empty reports whether the path crosses no links (zero value, or a
// route between co-located endpoints).
func (p Path) Empty() bool { return len(p.links) == 0 }

// Lookahead derives the conservative-engine lookahead this path
// supports: the earliest a transfer of at least minBytes dispatched
// "now" can complete at the far end is the summed propagation latency
// plus the time the fastest hop needs to carry the minimum quantum at
// nominal capacity. Degradation only slows links down (arrivals get
// later, never earlier), so nominal capacity keeps the bound safe. A
// cross-island channel built on this path may therefore promise its
// receiver exactly this much slack — the lookahead bound the parallel
// engine's concurrency is proportional to.
func (p Path) Lookahead(minBytes int64) simtime.Duration {
	var d simtime.Duration
	best := 0.0
	for _, l := range p.links {
		d += l.latency
		if l.nominal > best {
			best = l.nominal
		}
	}
	if minBytes > 0 && best > 0 {
		d += simtime.Duration(float64(minBytes) / best * 1e9)
	}
	return d
}

// Fabric returns the owning fabric (nil for the zero Path).
func (p Path) Fabric() *Fabric { return p.fab }

// Links returns the links crossed, in order.
func (p Path) Links() []*Link { return append([]*Link(nil), p.links...) }

// Names returns the link names crossed, in order.
func (p Path) Names() []string {
	out := make([]string, len(p.links))
	for i, l := range p.links {
		out[i] = l.name
	}
	return out
}

// With returns a copy of the path extended by one more link (e.g. the
// TSM server's LAN hop when the deployment is not LAN-free).
func (p Path) With(l *Link) Path {
	if l == nil {
		return p
	}
	if p.fab != nil && p.fab != l.fab {
		panic("fabric: Path.With link from a different fabric")
	}
	np := p
	np.fab = l.fab
	np.links = append(append([]*Link(nil), p.links...), l)
	return np
}

// Transfer moves n bytes along the path, blocking the calling actor
// until the coupled flow completes.
func (p Path) Transfer(n int64) {
	if p.fab == nil {
		return
	}
	p.fab.Transfer(p, n)
}

// Link is one shared medium in the graph: a trunk, a NIC, an HBA, a
// pool's NSD array, a server LAN port. Capacity is bytes per virtual
// second, shared max-min fairly among the flows crossing it.
type Link struct {
	fab      *Fabric
	name     string
	id       int // creation index: deterministic solver iteration order
	capacity float64
	nominal  float64 // capacity before degradation, restored on repair

	// crossing lists the flows currently crossing the link (one entry
	// per flow, multiplicity lives on the flow's cross record) with
	// crossIdx pointing back at each flow's cross slot — the adjacency
	// the incremental scheduler walks to find a change's connected
	// component. load and capLeft are that solver's per-link scratch;
	// mark stamps the component walk.
	crossing []*Flow
	crossIdx []int
	load     float64
	capLeft  float64
	mark     uint64
	comp     uint64 // component-gather stamp (see Fabric.solveID)

	// Accounting (updated at settle points).
	bytes    float64          // cumulative bytes carried
	busy     simtime.Duration // time with at least one flow crossing
	active   int              // distinct flows crossing now
	peak     int              // max concurrent flows seen
	timeline []TimePoint
	width    simtime.Duration // timeline sample spacing (doubles when full)

	// corruptQ holds armed silent corruptions, one per queued cause
	// event ID: the next flow to start across the link consumes one and
	// carries the taint. The link itself stays at full capacity — the
	// damage is invisible until a checksum is verified.
	corruptQ []uint64

	// latency is the link's propagation delay. The flow solver does not
	// charge it (LAN hops round to zero at archive timescales, and
	// charging it would perturb every calibrated experiment); it exists
	// for WAN links, where it is realized at the island boundary: the
	// cross-island channel delays each replication message by the
	// path's Lookahead, which sums these latencies. Zero by default.
	latency simtime.Duration
}

// SetLatency records the link's propagation delay (see the latency
// field for how it is realized). Returns the link for chaining.
func (l *Link) SetLatency(d simtime.Duration) *Link {
	if d < 0 {
		d = 0
	}
	l.latency = d
	return l
}

// Latency reports the link's propagation delay.
func (l *Link) Latency() simtime.Duration { return l.latency }

// maxTimeline bounds the per-link utilization timeline: beyond this the
// series is thinned to every other point and the spacing doubles, so
// multi-day campaigns stay bounded without losing the overall shape.
const maxTimeline = 4096

// TimePoint is one utilization-timeline sample: cumulative bytes
// carried and busy time as of a virtual instant.
type TimePoint struct {
	At    simtime.Duration
	Bytes float64
	Busy  simtime.Duration
}

// Name reports the link's unique label.
func (l *Link) Name() string { return l.name }

// Capacity reports the current capacity in bytes per virtual second.
func (l *Link) Capacity() float64 { return l.capacity }

// Rate is an alias for Capacity, satisfying the bandwidth-source shape
// shared with simtime.Pipe (workload noise sizes itself from it).
func (l *Link) Rate() float64 { return l.capacity }

// Nominal reports the undegraded capacity.
func (l *Link) Nominal() float64 { return l.nominal }

// Active reports the number of flows currently crossing the link.
func (l *Link) Active() int { return l.active }

// SetCapacity changes the link capacity. In-flight flows keep the bytes
// they have moved; every allocation is recomputed at the new capacity.
// This is the fault-injection hook for link degradation and repair.
func (l *Link) SetCapacity(v float64) {
	if v <= 0 {
		panic("fabric: link capacity must be positive")
	}
	f := l.fab
	f.settle()
	l.capacity = v
	f.recomputeLinks([]*Link{l})
	f.rearm()
}

// Scale sets capacity to factor x the nominal rate (Scale(1) repairs).
func (l *Link) Scale(factor float64) { l.SetCapacity(l.nominal * factor) }

// ArmCorrupt arms one silent in-flight corruption on the link, tagged
// with the fault event ID that provoked it: the next flow to start
// across the link is tainted (Flow.Tainted) and delivers mangled data
// without any transport-level error. Arm repeatedly to taint several
// upcoming flows.
func (l *Link) ArmCorrupt(causeEvent uint64) {
	l.corruptQ = append(l.corruptQ, causeEvent)
}

// ArmedCorruptions reports how many armed corruptions have not yet
// been consumed by a flow.
func (l *Link) ArmedCorruptions() int { return len(l.corruptQ) }

// Transfer moves n bytes across just this link, blocking the caller —
// the single-hop convenience for background noise and tests.
func (l *Link) Transfer(n int64) {
	l.fab.Transfer(Path{fab: l.fab, links: []*Link{l}}, n)
}

// Stream opens a persistent single-hop stream across the link — the
// coalesced form of repeated Transfer calls (background noise loops use
// it so each burst costs O(1) instead of a join/leave recompute pair).
func (l *Link) Stream(opts ...Option) *Flow {
	return l.fab.Stream(Path{fab: l.fab, links: []*Link{l}}, opts...)
}

// Stats returns a settled snapshot of the link's accounting.
func (l *Link) Stats() LinkStats {
	l.fab.settle()
	return LinkStats{
		Name:      l.name,
		Capacity:  l.capacity,
		Nominal:   l.nominal,
		Bytes:     l.bytes,
		Busy:      l.busy,
		PeakFlows: l.peak,
		Timeline:  append([]TimePoint(nil), l.timeline...),
	}
}

// LinkStats is a snapshot of one link's utilization record.
type LinkStats struct {
	Name      string
	Capacity  float64
	Nominal   float64
	Bytes     float64          // cumulative bytes carried
	Busy      simtime.Duration // time with >= 1 flow crossing
	PeakFlows int
	Timeline  []TimePoint
}

// Utilization reports bytes carried as a fraction of what the nominal
// capacity could have carried over elapsed — the bottleneck-naming
// metric: the hop pinned at ~1.0 is the ceiling.
func (s LinkStats) Utilization(elapsed simtime.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return s.Bytes / (s.Nominal * elapsed.Seconds())
}

// BusyFraction reports the fraction of elapsed time the link had at
// least one flow crossing it.
func (s LinkStats) BusyFraction(elapsed simtime.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(elapsed)
}

// sample appends a timeline point if the spacing has lapsed, thinning
// when the series is full.
func (l *Link) sample(now simtime.Duration) {
	if l.width == 0 {
		l.width = time.Minute
	}
	if len(l.timeline) > 0 && now-l.timeline[len(l.timeline)-1].At < l.width {
		return
	}
	l.timeline = append(l.timeline, TimePoint{At: now, Bytes: l.bytes, Busy: l.busy})
	if len(l.timeline) >= maxTimeline {
		kept := l.timeline[:0]
		for i := 0; i < len(l.timeline); i += 2 {
			kept = append(kept, l.timeline[i])
		}
		l.timeline = kept
		l.width *= 2
	}
}
