package fabric

import (
	"math"

	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Flow is one in-flight transfer: B bytes traversing every link of its
// path simultaneously, at one coupled rate. The rate is recomputed by
// progressive-filling max-min fairness whenever any flow joins, leaves,
// or a link capacity changes; between those events the flow needs no
// bookkeeping, so a petabyte transfer costs O(1) events like a
// simtime.Pipe transfer.
//
// A Flow is either one-shot (Start ... Wait) or a persistent stream
// (Stream ... Send ... Send ... Close): a stream stays allocated across
// back-to-back segments, so a worker pumping thousands of small batches
// over one route pays for one fair-share recompute instead of two per
// batch. Each Send is accounted exactly like a one-shot flow would be —
// same counters, same taint consumption, same per-link byte and busy
// accounting — so the virtual-time results are identical.
type Flow struct {
	fab   *Fabric
	seq   uint64
	path  []*Link     // hops in order, repeats included
	cross []linkCross // unique links with crossing multiplicity
	pos   []int       // index of this flow in cross[i].link.crossing

	bytes     float64
	remaining float64
	rate      float64 // current allocation, bytes/s
	capRate   float64 // per-flow stream cap; 0 = uncapped
	done      bool
	mark      uint64        // component-walk epoch (solver scratch)
	comp      uint64        // component-gather stamp (solver scratch)
	waitGate  simtime.Latch // completion gate (reset per stream segment)

	persistent bool // long-lived stream: Send extends, drain pauses lazily
	inFlows    bool // member of fab.flows and the link crossing lists
	draining   bool // segment drained; instant-end finalize will pause it

	tainted    bool   // a crossed link silently corrupted the stream
	taintCause uint64 // fault event ID that armed the corruption
}

// linkCross is a unique link on a flow's path with its multiplicity: a
// flow whose route crosses a link k times consumes k x its rate there.
type linkCross struct {
	link *Link
	k    int
}

// Option tunes one flow.
type Option func(*Flow)

// WithCap bounds the flow to at most rate bytes/second regardless of
// link shares — the single-stream ceiling of a striped pool (one file
// descriptor only reaches the NSDs its stripes land on). It replaces
// pftool's post-hoc streamFloor sleep: the cap participates in the
// max-min allocation, so capped flows leave their unused share to
// others. Non-positive rates mean uncapped.
func WithCap(rate float64) Option {
	return func(fl *Flow) {
		if rate > 0 {
			fl.capRate = rate
		}
	}
}

// completionEps is the service slack at which a flow counts as done: a
// byte of accumulated float rounding, invisible at simulation scale.
const completionEps = 1.0

// minRate floors every allocation so a flow on a crawling link still
// makes forward progress instead of wedging virtual time.
const minRate = 1.0

// counters resolves the flow counters lazily: New may run inside
// clock.Attach (Of), where telemetry.Of would deadlock on the clock
// mutex; Start and Send always run from plain actor context.
func (f *Fabric) counters() {
	if f.ctrFlowsStarted == nil {
		tel := telemetry.Of(f.clock)
		f.ctrFlowsStarted = tel.Counter("fabric_flows_started_total")
		f.ctrFlowsCompleted = tel.Counter("fabric_flows_completed_total")
		f.ctrFlowsCorrupted = tel.Counter("fabric_flows_corrupted_total")
	}
}

// buildCross fills path/cross/pos from a resolved route. Paths are a
// handful of hops, so the duplicate scan is linear, not a map.
func (fl *Flow) buildCross(links []*Link) {
	fl.path = append([]*Link(nil), links...)
	for _, l := range fl.path {
		found := -1
		for i := range fl.cross {
			if fl.cross[i].link == l {
				found = i
				break
			}
		}
		if found >= 0 {
			fl.cross[found].k++
			continue
		}
		fl.cross = append(fl.cross, linkCross{link: l, k: 1})
	}
	fl.pos = make([]int, len(fl.cross))
}

// consumeTaint consumes at most one armed silent corruption from the
// links the flow crosses, in path order — the per-flow (or, for
// streams, per-segment) half of Link.ArmCorrupt.
func (fl *Flow) consumeTaint() {
	fl.tainted, fl.taintCause = false, 0
	for i := range fl.cross {
		l := fl.cross[i].link
		if len(l.corruptQ) > 0 {
			fl.taintCause = l.corruptQ[0]
			l.corruptQ = l.corruptQ[1:]
			fl.tainted = true
			fl.fab.ctrFlowsCorrupted.Inc()
			return
		}
	}
}

// Start launches a flow of n bytes along the path and returns without
// blocking; Wait blocks until it completes. Zero-byte flows and empty
// paths (co-located endpoints) complete immediately. Must be called
// from actor context.
func (f *Fabric) Start(p Path, n int64, opts ...Option) *Flow {
	f.counters()
	f.ctrFlowsStarted.Inc()
	fl := &Flow{fab: f, bytes: float64(n), remaining: float64(n), waitGate: simtime.MakeLatch(f.clock)}
	for _, o := range opts {
		o(fl)
	}
	if n <= 0 || len(p.links) == 0 {
		fl.remaining = 0
		fl.done = true
		f.ctrFlowsCompleted.Inc()
		fl.waitGate.Signal()
		return fl
	}
	if p.fab != f {
		panic("fabric: Start with a path from a different fabric")
	}
	fl.buildCross(p.links)
	fl.consumeTaint()
	f.settle()
	f.join(fl)
	f.recomputeFlow(fl)
	f.rearm()
	return fl
}

// Stream opens a persistent flow along the path: it holds no allocation
// until Send pushes a segment through it, and between segments that end
// at different instants it leaves the allocation entirely (lazy pause —
// an idle stream steals no share). One segment may be in flight at a
// time; Send blocks until its segment drains.
func (f *Fabric) Stream(p Path, opts ...Option) *Flow {
	fl := &Flow{fab: f, persistent: true, waitGate: simtime.MakeLatch(f.clock)}
	for _, o := range opts {
		o(fl)
	}
	if len(p.links) > 0 {
		if p.fab != f {
			panic("fabric: Stream with a path from a different fabric")
		}
		fl.buildCross(p.links)
	}
	return fl
}

// Send pushes n more bytes through the stream and blocks the calling
// actor until they drain, reporting whether a crossed link silently
// corrupted this segment (and which fault event armed it). Each Send is
// one flow's worth of accounting: the started/completed counters, the
// corruption queue, and the per-link active/peak numbers all see it
// exactly as they would a one-shot Start/Wait.
func (fl *Flow) Send(n int64) (causeEvent uint64, tainted bool) {
	f := fl.fab
	if !fl.persistent {
		panic("fabric: Send on a one-shot flow")
	}
	if fl.done {
		panic("fabric: Send on a closed stream")
	}
	f.counters()
	f.ctrFlowsStarted.Inc()
	if n <= 0 || len(fl.cross) == 0 {
		fl.tainted, fl.taintCause = false, 0
		f.ctrFlowsCompleted.Inc()
		return 0, false
	}
	fl.consumeTaint()
	f.settle()
	fl.bytes += float64(n)
	fl.remaining += float64(n)
	fl.waitGate = simtime.MakeLatch(f.clock)
	switch {
	case fl.draining:
		// Re-extended within the drain instant: the stream never left
		// the allocation, so its rate (and everyone else's) is already
		// right — no recompute, just restore the active accounting and
		// re-arm for the new horizon. This is the fast path that makes
		// back-to-back small segments O(1).
		fl.draining = false
		for i := range fl.cross {
			l := fl.cross[i].link
			l.active++
			if l.active > l.peak {
				l.peak = l.active
			}
		}
		f.fastRearm(fl)
	case !fl.inFlows:
		// Paused (or first Send): join the allocation like a fresh flow.
		f.join(fl)
		f.recomputeFlow(fl)
		f.rearm()
	default:
		panic("fabric: concurrent Send on one stream")
	}
	fl.waitGate.Wait()
	return fl.taintCause, fl.tainted
}

// Close marks the stream finished. It must not be called with a segment
// in flight (Send blocks until drain, so serial callers are safe).
func (fl *Flow) Close() {
	if !fl.persistent || fl.done {
		return
	}
	if fl.remaining > 0 {
		panic("fabric: Close with a segment in flight")
	}
	fl.done = true
}

// join adds the flow to the active set and the per-link crossing lists.
// Streams get a fresh seq per activation, so the solver sees them in
// the same arrival order a one-shot flow would have.
func (f *Fabric) join(fl *Flow) {
	f.seq++
	fl.seq = f.seq
	f.flows = append(f.flows, fl)
	fl.inFlows = true
	for i := range fl.cross {
		l := fl.cross[i].link
		fl.pos[i] = len(l.crossing)
		l.crossing = append(l.crossing, fl)
		l.crossIdx = append(l.crossIdx, i)
		l.active++
		if l.active > l.peak {
			l.peak = l.active
		}
	}
}

// unlink removes the flow from the per-link crossing lists
// (swap-remove; the moved flow's back-pointer is patched). The caller
// handles f.flows membership and the active counters.
func (f *Fabric) unlink(fl *Flow) {
	for i := range fl.cross {
		l := fl.cross[i].link
		j := fl.pos[i]
		last := len(l.crossing) - 1
		if j != last {
			moved := l.crossing[last]
			mi := l.crossIdx[last]
			l.crossing[j] = moved
			l.crossIdx[j] = mi
			moved.pos[mi] = j
		}
		l.crossing[last] = nil
		l.crossing = l.crossing[:last]
		l.crossIdx = l.crossIdx[:last]
	}
	fl.inFlows = false
}

// Transfer moves n bytes along the path, blocking the calling actor
// until the flow completes.
func (f *Fabric) Transfer(p Path, n int64, opts ...Option) {
	f.Start(p, n, opts...).Wait()
}

// Wait blocks the calling actor until the flow (or, for a stream, the
// current segment) completes.
func (fl *Flow) Wait() { fl.waitGate.Wait() }

// Done reports whether the flow has completed (streams: closed).
func (fl *Flow) Done() bool { return fl.done }

// Bytes reports the flow's total size (streams: cumulative bytes sent).
func (fl *Flow) Bytes() int64 { return int64(fl.bytes) }

// Rate reports the flow's current max-min allocation in bytes/second.
func (fl *Flow) Rate() float64 { return fl.rate }

// Tainted reports whether a link silently corrupted this flow's
// stream, and if so which fault event armed it. The flow still
// completes normally — a reader only learns of the damage by checking
// a checksum.
func (fl *Flow) Tainted() (causeEvent uint64, ok bool) {
	return fl.taintCause, fl.tainted
}

// Transferred reports bytes moved so far, settled to the present — the
// pull-style progress source pftool's WatchDog samples (a single flow
// spanning a whole file generates no events of its own to push). For a
// stream it is cumulative across segments.
func (fl *Flow) Transferred() int64 {
	if !fl.done && fl.inFlows {
		fl.fab.settle()
	}
	return int64(fl.bytes - fl.remaining)
}

// settle advances every active flow to the present at its current rate,
// crediting per-link byte and busy accounting.
func (f *Fabric) settle() {
	now := f.clock.Now()
	dt := now - f.last
	if dt <= 0 {
		return
	}
	f.last = now
	if len(f.flows) == 0 {
		return
	}
	sec := dt.Seconds()
	for _, fl := range f.flows {
		delta := fl.rate * sec
		if delta > fl.remaining {
			delta = fl.remaining
		}
		fl.remaining -= delta
		for i := range fl.cross {
			fl.cross[i].link.bytes += delta * float64(fl.cross[i].k)
		}
	}
	for _, l := range f.order {
		if l.active > 0 {
			l.busy += dt
		}
		l.sample(now)
	}
}

// SetFullRecompute switches the scheduler between incremental
// (component-scoped) and full recomputes. Full mode solves every
// connected component on every membership or capacity event — the
// FABRIC_FULL_RECOMPUTE debug mode the equivalence tests compare
// against. Both modes run the identical canonical per-component solver,
// so their allocations are bit-for-bit the same.
func (f *Fabric) SetFullRecompute(on bool) { f.fullRecompute = on }

// recomputeFlow recomputes the connected component the flow belongs to
// (or everything, in full mode).
func (f *Fabric) recomputeFlow(fl *Flow) {
	if f.fullRecompute {
		f.recomputeAll()
		return
	}
	if len(fl.cross) == 0 {
		return
	}
	f.epoch++
	f.solveComponentFrom(fl.cross[0].link)
}

// recomputeLinks recomputes every component touching the seed links.
func (f *Fabric) recomputeLinks(seeds []*Link) {
	if f.fullRecompute {
		f.recomputeAll()
		return
	}
	f.epoch++
	for _, l := range seeds {
		f.solveComponentFrom(l)
	}
}

// recomputeAll solves every connected component, in arrival order of
// each component's first flow. Incremental recomputes run the same
// per-component solver, so skipping untouched components changes no
// allocation: a deterministic solver over unchanged inputs returns the
// rates those flows already have.
func (f *Fabric) recomputeAll() {
	f.epoch++
	for _, fl := range f.flows {
		if fl.mark != f.epoch && len(fl.cross) > 0 {
			f.solveComponentFrom(fl.cross[0].link)
		}
	}
}

// solveComponentFrom gathers the connected component of the flow/link
// sharing graph reachable from seed (skipping it if this epoch already
// solved it) and runs the canonical max-min solver on it: flows in
// arrival (seq) order, links in creation (id) order — the same
// deterministic iteration the global recompute used, restricted to the
// component. The BFS only stamps epoch marks; the canonical order is
// recovered by filtering f.flows (kept seq-ascending by join/filter)
// and f.order (id-ascending by construction), so no sort is needed.
func (f *Fabric) solveComponentFrom(seed *Link) {
	if seed.mark == f.epoch {
		return
	}
	f.solveID++
	seed.mark, seed.comp = f.epoch, f.solveID
	f.compLinks = append(f.compLinks[:0], seed)
	nflows := 0
	for i := 0; i < len(f.compLinks); i++ {
		for _, fl := range f.compLinks[i].crossing {
			if fl.comp == f.solveID {
				continue
			}
			fl.mark, fl.comp = f.epoch, f.solveID
			nflows++
			for j := range fl.cross {
				l := fl.cross[j].link
				if l.comp != f.solveID {
					l.mark, l.comp = f.epoch, f.solveID
					f.compLinks = append(f.compLinks, l)
				}
			}
		}
	}
	if nflows == 0 {
		return
	}
	f.compFlows = f.compFlows[:0]
	for _, fl := range f.flows {
		if fl.comp == f.solveID {
			f.compFlows = append(f.compFlows, fl)
		}
	}
	nlinks := len(f.compLinks)
	f.compLinks = f.compLinks[:0]
	for _, l := range f.order {
		if l.comp == f.solveID {
			f.compLinks = append(f.compLinks, l)
			if len(f.compLinks) == nlinks {
				break
			}
		}
	}
	f.solve(f.compFlows, f.compLinks)
}

// solve reruns progressive-filling max-min fairness over one component:
// repeatedly find the tightest constraint — the link with the smallest
// capacity-left / crossings share, or a flow cap below it — freeze the
// flows it binds at that rate, subtract them, and continue. The link
// scratch lives on the Link itself (no maps), which is most of the
// solver's former cost at campaign scale.
func (f *Fabric) solve(flows []*Flow, links []*Link) {
	for _, l := range links {
		l.load = 0
		l.capLeft = l.capacity
	}
	for _, fl := range flows {
		for i := range fl.cross {
			fl.cross[i].link.load += float64(fl.cross[i].k)
		}
	}
	freeze := func(fl *Flow, r float64) {
		for i := range fl.cross {
			l := fl.cross[i].link
			l.capLeft -= r * float64(fl.cross[i].k)
			if l.capLeft < 0 {
				l.capLeft = 0
			}
			l.load -= float64(fl.cross[i].k)
		}
		if r < minRate {
			r = minRate
		}
		fl.rate = r
	}
	unfrozen := append(f.scratchA[:0], flows...)
	spare := f.scratchB[:0]
	for len(unfrozen) > 0 {
		share := math.Inf(1)
		for _, l := range links {
			if l.load > 0 {
				if s := l.capLeft / l.load; s < share {
					share = s
				}
			}
		}
		// Flow caps tighter than the link share bind first: freeze those
		// flows at their cap and refill the slack they leave behind.
		next := spare[:0]
		for _, fl := range unfrozen {
			if fl.capRate > 0 && fl.capRate <= share {
				freeze(fl, fl.capRate)
			} else {
				next = append(next, fl)
			}
		}
		if len(next) < len(unfrozen) {
			unfrozen, spare = next, unfrozen[:0]
			continue
		}
		// No cap binds: the bottleneck link(s) do. Freeze every flow
		// crossing a link at the bottleneck share. Freezing one such flow
		// leaves the bottleneck's ratio at exactly the share, so a single
		// pass with a drift tolerance freezes the whole binding set.
		const tol = 1 + 1e-9
		keep := spare[:0]
		for _, fl := range unfrozen {
			binding := false
			for i := range fl.cross {
				l := fl.cross[i].link
				if l.load > 0 && l.capLeft/l.load <= share*tol {
					binding = true
					break
				}
			}
			if binding {
				freeze(fl, share)
			} else {
				keep = append(keep, fl)
			}
		}
		if len(keep) == len(unfrozen) {
			// Defensive: float drift hid the binding set; freeze the rest
			// at the computed share rather than looping forever.
			for _, fl := range keep {
				freeze(fl, share)
			}
			keep = keep[:0]
		}
		unfrozen, spare = keep, unfrozen[:0]
	}
	f.scratchA, f.scratchB = unfrozen[:0], spare[:0]
}

// rearm schedules the fabric's single completion timer for the
// earliest-finishing flow. The previous timer is canceled (feeding the
// clock's heap compaction); generation counters still invalidate timers
// a best-effort cancel missed.
func (f *Fabric) rearm() {
	f.gen++
	if f.cancelTimer != nil {
		f.clock.CancelCallback(f.cancelTimer)
		f.cancelTimer = nil
	}
	earliest := math.Inf(1)
	for _, fl := range f.flows {
		if fl.remaining <= 0 {
			continue // drained stream awaiting the instant-end pause
		}
		if t := fl.remaining / fl.rate; t < earliest {
			earliest = t
		}
	}
	if math.IsInf(earliest, 1) {
		return
	}
	// +1ns guarantees forward progress when float rounding makes the
	// computed horizon vanish (mirrors simtime.Pipe).
	if f.timerFn == nil {
		f.timerFn = f.onTimer
	}
	f.timerAt = f.clock.Now() + simtime.Duration(earliest*1e9) + 1
	f.cancelTimer = f.clock.CallbackArg(f.timerAt, f.timerFn, f.gen)
}

// fastRearm re-arms the completion timer after a same-instant stream
// re-extension. No rate changed, so every other flow's horizon is
// exactly what the armed timer already covers; the new earliest is the
// minimum of the armed deadline and this flow's own — an O(1) update
// instead of rearm's scan over every active flow. (Duration conversion
// is monotonic, so taking the minimum after converting each horizon
// matches rearm's convert-after-min bit for bit.)
func (f *Fabric) fastRearm(fl *Flow) {
	if fl.rate <= 0 {
		return // no horizon of its own; the armed timer still stands
	}
	at := f.clock.Now() + simtime.Duration(fl.remaining/fl.rate*1e9) + 1
	if f.cancelTimer != nil && f.timerAt <= at {
		return
	}
	f.gen++
	if f.cancelTimer != nil {
		f.clock.CancelCallback(f.cancelTimer)
	}
	if f.timerFn == nil {
		f.timerFn = f.onTimer
	}
	f.timerAt = at
	f.cancelTimer = f.clock.CallbackArg(at, f.timerFn, f.gen)
}

// onTimer fires at a completion instant: settle, release every finished
// flow (crediting its residual sub-epsilon bytes so per-link accounting
// conserves bytes exactly), recompute what changed, re-arm. Drained
// streams are signaled but stay in the allocation until the instant
// ends: if the owner extends them again at this instant (the
// back-to-back small-file case) nothing recomputes at all; otherwise
// the instant-end finalize pauses them before any time passes.
func (f *Fabric) onTimer(gen uint64) {
	if gen != f.gen {
		return // stale: membership or rates changed since it was armed
	}
	f.cancelTimer = nil
	f.settle()
	f.seedLinks = f.seedLinks[:0]
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.draining || fl.remaining > completionEps {
			live = append(live, fl)
			continue
		}
		for i := range fl.cross {
			l := fl.cross[i].link
			l.bytes += fl.remaining * float64(fl.cross[i].k)
			l.active--
		}
		fl.remaining = 0
		f.ctrFlowsCompleted.Inc()
		if fl.persistent {
			fl.draining = true
			f.drainQ = append(f.drainQ, fl)
			if !f.finalizePending {
				f.finalizePending = true
				if f.finalizeFn == nil {
					f.finalizeFn = f.finalizeStreams
				}
				f.clock.AtInstantEnd(f.finalizeFn)
			}
			fl.waitGate.Signal()
			live = append(live, fl)
			continue
		}
		fl.done = true
		f.unlink(fl)
		for i := range fl.cross {
			f.seedLinks = append(f.seedLinks, fl.cross[i].link)
		}
		fl.waitGate.Signal()
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	if len(f.seedLinks) > 0 {
		f.recomputeLinks(f.seedLinks)
	}
	f.rearm()
}

// finalizeStreams runs at the end of the instant a stream drained in:
// any stream still idle leaves the allocation now, before virtual time
// advances, so the shares it was holding are redistributed with zero
// elapsed time at the interim rates — byte-for-byte what removing it at
// drain time would have produced, minus the recompute churn.
func (f *Fabric) finalizeStreams() {
	f.finalizePending = false
	f.seedLinks = f.seedLinks[:0]
	changed := false
	for _, fl := range f.drainQ {
		if !fl.draining {
			continue // re-extended before the instant ended
		}
		fl.draining = false
		f.unlink(fl)
		for i := range fl.cross {
			f.seedLinks = append(f.seedLinks, fl.cross[i].link)
		}
		changed = true
	}
	for i := range f.drainQ {
		f.drainQ[i] = nil
	}
	f.drainQ = f.drainQ[:0]
	if !changed {
		return
	}
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.inFlows {
			live = append(live, fl)
		}
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	f.recomputeLinks(f.seedLinks)
	f.rearm()
}
