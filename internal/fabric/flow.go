package fabric

import (
	"math"

	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Flow is one in-flight transfer: B bytes traversing every link of its
// path simultaneously, at one coupled rate. The rate is recomputed by
// progressive-filling max-min fairness whenever any flow joins, leaves,
// or a link capacity changes; between those events the flow needs no
// bookkeeping, so a petabyte transfer costs O(1) events like a
// simtime.Pipe transfer.
type Flow struct {
	fab   *Fabric
	seq   uint64
	path  []*Link     // hops in order, repeats included
	cross []linkCross // unique links with crossing multiplicity

	bytes     float64
	remaining float64
	rate      float64 // current allocation, bytes/s
	capRate   float64 // per-flow stream cap; 0 = uncapped
	done      bool
	q         *simtime.Queue // completion mailbox: Wait pops, the timer pushes

	tainted    bool   // a crossed link silently corrupted the stream
	taintCause uint64 // fault event ID that armed the corruption
}

// linkCross is a unique link on a flow's path with its multiplicity: a
// flow whose route crosses a link k times consumes k x its rate there.
type linkCross struct {
	link *Link
	k    int
}

// Option tunes one flow.
type Option func(*Flow)

// WithCap bounds the flow to at most rate bytes/second regardless of
// link shares — the single-stream ceiling of a striped pool (one file
// descriptor only reaches the NSDs its stripes land on). It replaces
// pftool's post-hoc streamFloor sleep: the cap participates in the
// max-min allocation, so capped flows leave their unused share to
// others. Non-positive rates mean uncapped.
func WithCap(rate float64) Option {
	return func(fl *Flow) {
		if rate > 0 {
			fl.capRate = rate
		}
	}
}

// completionEps is the service slack at which a flow counts as done: a
// byte of accumulated float rounding, invisible at simulation scale.
const completionEps = 1.0

// minRate floors every allocation so a flow on a crawling link still
// makes forward progress instead of wedging virtual time.
const minRate = 1.0

// Start launches a flow of n bytes along the path and returns without
// blocking; Wait blocks until it completes. Zero-byte flows and empty
// paths (co-located endpoints) complete immediately. Must be called
// from actor context.
func (f *Fabric) Start(p Path, n int64, opts ...Option) *Flow {
	if f.ctrFlowsStarted == nil {
		tel := telemetry.Of(f.clock)
		f.ctrFlowsStarted = tel.Counter("fabric_flows_started_total")
		f.ctrFlowsCompleted = tel.Counter("fabric_flows_completed_total")
		f.ctrFlowsCorrupted = tel.Counter("fabric_flows_corrupted_total")
	}
	f.ctrFlowsStarted.Inc()
	fl := &Flow{fab: f, bytes: float64(n), remaining: float64(n), q: simtime.NewQueue(f.clock)}
	for _, o := range opts {
		o(fl)
	}
	if n <= 0 || len(p.links) == 0 {
		fl.remaining = 0
		fl.done = true
		f.ctrFlowsCompleted.Inc()
		fl.q.Push(nil)
		return fl
	}
	if p.fab != f {
		panic("fabric: Start with a path from a different fabric")
	}
	fl.path = append([]*Link(nil), p.links...)
	idx := make(map[*Link]int, len(fl.path))
	for _, l := range fl.path {
		if i, ok := idx[l]; ok {
			fl.cross[i].k++
			continue
		}
		idx[l] = len(fl.cross)
		fl.cross = append(fl.cross, linkCross{link: l, k: 1})
		if !fl.tainted && len(l.corruptQ) > 0 {
			fl.taintCause = l.corruptQ[0]
			l.corruptQ = l.corruptQ[1:]
			fl.tainted = true
			f.ctrFlowsCorrupted.Inc()
		}
	}
	f.settle()
	f.seq++
	fl.seq = f.seq
	f.flows = append(f.flows, fl)
	for _, c := range fl.cross {
		c.link.active++
		if c.link.active > c.link.peak {
			c.link.peak = c.link.active
		}
	}
	f.recompute()
	f.rearm()
	return fl
}

// Transfer moves n bytes along the path, blocking the calling actor
// until the flow completes.
func (f *Fabric) Transfer(p Path, n int64, opts ...Option) {
	f.Start(p, n, opts...).Wait()
}

// Wait blocks the calling actor until the flow completes.
func (fl *Flow) Wait() { fl.q.Pop() }

// Done reports whether the flow has completed.
func (fl *Flow) Done() bool { return fl.done }

// Bytes reports the flow's total size.
func (fl *Flow) Bytes() int64 { return int64(fl.bytes) }

// Rate reports the flow's current max-min allocation in bytes/second.
func (fl *Flow) Rate() float64 { return fl.rate }

// Tainted reports whether a link silently corrupted this flow's
// stream, and if so which fault event armed it. The flow still
// completes normally — a reader only learns of the damage by checking
// a checksum.
func (fl *Flow) Tainted() (causeEvent uint64, ok bool) {
	return fl.taintCause, fl.tainted
}

// Transferred reports bytes moved so far, settled to the present — the
// pull-style progress source pftool's WatchDog samples (a single flow
// spanning a whole file generates no events of its own to push).
func (fl *Flow) Transferred() int64 {
	if !fl.done {
		fl.fab.settle()
	}
	return int64(fl.bytes - fl.remaining)
}

// settle advances every active flow to the present at its current rate,
// crediting per-link byte and busy accounting.
func (f *Fabric) settle() {
	now := f.clock.Now()
	dt := now - f.last
	if dt <= 0 {
		return
	}
	f.last = now
	if len(f.flows) == 0 {
		return
	}
	sec := dt.Seconds()
	for _, fl := range f.flows {
		delta := fl.rate * sec
		if delta > fl.remaining {
			delta = fl.remaining
		}
		fl.remaining -= delta
		for _, c := range fl.cross {
			c.link.bytes += delta * float64(c.k)
		}
	}
	for _, l := range f.order {
		if l.active > 0 {
			l.busy += dt
		}
		l.sample(now)
	}
}

// recompute reruns progressive-filling max-min fairness over the active
// flows: repeatedly find the tightest constraint — the link with the
// smallest capacity-left / crossings share, or a flow cap below it —
// freeze the flows it binds at that rate, subtract them, and continue.
// Link iteration follows creation order and flows stay in arrival
// order, so allocations are deterministic.
func (f *Fabric) recompute() {
	if len(f.flows) == 0 {
		return
	}
	load := make(map[*Link]float64)
	capLeft := make(map[*Link]float64)
	for _, fl := range f.flows {
		for _, c := range fl.cross {
			load[c.link] += float64(c.k)
		}
	}
	for l := range load {
		capLeft[l] = l.capacity
	}
	freeze := func(fl *Flow, r float64) {
		for _, c := range fl.cross {
			capLeft[c.link] -= r * float64(c.k)
			if capLeft[c.link] < 0 {
				capLeft[c.link] = 0
			}
			load[c.link] -= float64(c.k)
		}
		if r < minRate {
			r = minRate
		}
		fl.rate = r
	}
	unfrozen := append([]*Flow(nil), f.flows...)
	for len(unfrozen) > 0 {
		share := math.Inf(1)
		for _, l := range f.order {
			if w := load[l]; w > 0 {
				if s := capLeft[l] / w; s < share {
					share = s
				}
			}
		}
		// Flow caps tighter than the link share bind first: freeze those
		// flows at their cap and refill the slack they leave behind.
		var next []*Flow
		for _, fl := range unfrozen {
			if fl.capRate > 0 && fl.capRate <= share {
				freeze(fl, fl.capRate)
			} else {
				next = append(next, fl)
			}
		}
		if len(next) < len(unfrozen) {
			unfrozen = next
			continue
		}
		// No cap binds: the bottleneck link(s) do. Freeze every flow
		// crossing a link at the bottleneck share. Freezing one such flow
		// leaves the bottleneck's ratio at exactly the share, so a single
		// pass with a drift tolerance freezes the whole binding set.
		const tol = 1 + 1e-9
		var keep []*Flow
		for _, fl := range unfrozen {
			binding := false
			for _, c := range fl.cross {
				if w := load[c.link]; w > 0 && capLeft[c.link]/w <= share*tol {
					binding = true
					break
				}
			}
			if binding {
				freeze(fl, share)
			} else {
				keep = append(keep, fl)
			}
		}
		if len(keep) == len(unfrozen) {
			// Defensive: float drift hid the binding set; freeze the rest
			// at the computed share rather than looping forever.
			for _, fl := range keep {
				freeze(fl, share)
			}
			keep = nil
		}
		unfrozen = keep
	}
}

// rearm schedules the fabric's single completion timer for the
// earliest-finishing flow. Generation counters invalidate timers made
// stale by membership or rate changes.
func (f *Fabric) rearm() {
	f.gen++
	if len(f.flows) == 0 {
		return
	}
	earliest := math.Inf(1)
	for _, fl := range f.flows {
		if t := fl.remaining / fl.rate; t < earliest {
			earliest = t
		}
	}
	gen := f.gen
	// +1ns guarantees forward progress when float rounding makes the
	// computed horizon vanish (mirrors simtime.Pipe).
	f.clock.At(f.clock.Now()+simtime.Duration(earliest*1e9)+1, func() {
		f.onTimer(gen)
	})
}

// onTimer fires at a completion instant: settle, release every finished
// flow (crediting its residual sub-epsilon bytes so per-link accounting
// conserves bytes exactly), recompute, re-arm.
func (f *Fabric) onTimer(gen uint64) {
	if gen != f.gen {
		return // stale: membership or rates changed since it was armed
	}
	f.settle()
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.remaining <= completionEps {
			for _, c := range fl.cross {
				c.link.bytes += fl.remaining * float64(c.k)
				c.link.active--
			}
			fl.remaining = 0
			fl.done = true
			f.ctrFlowsCompleted.Inc()
			fl.q.Push(nil)
		} else {
			live = append(live, fl)
		}
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	f.recompute()
	f.rearm()
}
