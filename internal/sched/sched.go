// Package sched is the archive's unified admission and scheduling
// layer: one per-clock scheduler (sched.Of, mirroring fabric.Of and
// telemetry.Of) that owns admission for every demand source in the
// stack — pftool copy/compare jobs, HSM migration and recall batches,
// TSM drive sessions, scrubber and reclamation passes, and federation
// replication. Before this layer each subsystem enqueued privately;
// now every one submits a typed work Item tagged with a tenant and a
// QoS class and blocks at a named Station until the scheduler grants
// admission, the shape TALICS³ simulates for a tape library serving
// cloud tenants with request mixes and service objectives.
//
// Policy, per station:
//
//   - strict priority across classes: interactive > batch > scavenger,
//     bounded by an anti-starvation share — while scavenger work is
//     backlogged, every higher-class dispatch accrues scavenger credit
//     and at ≥1 credit the next grant must come from the scavenger
//     lane, so background work keeps a guaranteed minimum share;
//   - start-time weighted fair queueing across tenants within a class:
//     each tenant queue carries a virtual start tag advanced by
//     units/weight on dispatch, the minimum tag wins (ties broken by
//     tenant name for determinism), so long-run shares are
//     weight-proportional and an idle tenant's tag catches up to lane
//     virtual time instead of hoarding credit;
//   - per-tenant token-bucket quotas (units/second with a burst cap):
//     a tenant out of tokens is skipped — work-conserving, others run
//     ahead — and when every backlogged tenant is throttled the
//     station arms a wake timer at the earliest refill.
//
// The scheduler arbitrates *admission order only* and then dispatches
// into the existing executors; data movement still charges the
// fabric's max-min fair-share underneath. A station with no
// configured limit is pass-through: grants are immediate, no virtual
// time passes, no events are scheduled — which is exactly why the
// single-tenant default path stays byte-identical to the
// pre-scheduler behavior.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Admission-refusal errors, surfaced through Grant.Err. Work is never
// silently dropped: every refusal increments deadline_exceeded_total
// or sched_shed_total alongside the error.
var (
	// ErrDeadlineExceeded means the item's virtual-time deadline passed
	// before the scheduler could grant it a slot — the work is doomed
	// (nobody is waiting anymore) so admitting it would only hold a
	// drive that live work needs.
	ErrDeadlineExceeded = errors.New("sched: deadline exceeded")
	// ErrShed means the brownout watermark rejected the item at
	// admission: its class's queue was already waiting longer than the
	// configured watermark, so adding more of that class would only
	// deepen the overload.
	ErrShed = errors.New("sched: shed by overload watermark")
)

// slot is the clock slot Of resolves; with one clock per island the
// scheduler is automatically island-local.
var slot = simtime.NewSlot()

func newForClock(clock *simtime.Clock) interface{} { return newScheduler(clock) }

// Of returns the scheduler shared by every component on the clock,
// creating it on first use. Like fabric.Of it must NOT be called from
// inside another component's Attach constructor; resolve lazily.
func Of(clock *simtime.Clock) *Scheduler {
	return clock.SlotOf(slot, newForClock).(*Scheduler)
}

// Class is a work item's QoS class.
type Class int

// QoS classes, in strict dispatch priority order. The zero value is
// "unset" so each admission point can apply its own default (recalls
// default interactive, migrations batch, scrubbing scavenger).
const (
	ClassUnset  Class = iota
	Interactive       // a user is waiting on the result
	Batch             // throughput work: migrations, campaign copies
	Scavenger         // background upkeep: scrub, reclaim, replication
)

// classOrder is the strict dispatch priority.
var classOrder = [...]Class{Interactive, Batch, Scavenger}

func (c Class) String() string {
	switch c {
	case ClassUnset:
		return "unset"
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Scavenger:
		return "scavenger"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// DefaultTenant labels work submitted without a tenant tag — the
// single-tenant default path of E1–E19.
const DefaultTenant = "default"

// QoS tags a work item with who it is for and how urgent it is.
type QoS struct {
	Tenant string
	Class  Class
	// Deadline is the absolute virtual time past which the work is no
	// longer worth doing (0 = none). It rides the QoS struct so it
	// propagates pfcp→hsm→tsm→tape through the existing request
	// plumbing: an expired item is refused at Admit (or cancelled in
	// queue when its deadline passes before a slot frees) instead of
	// holding a drive for a caller that already gave up.
	Deadline simtime.Duration
}

// Or fills unset fields: an empty tenant becomes DefaultTenant, an
// unset class becomes the admission point's default.
func (q QoS) Or(class Class) QoS {
	if q.Tenant == "" {
		q.Tenant = DefaultTenant
	}
	if q.Class == ClassUnset {
		q.Class = class
	}
	return q
}

// Station names: one per admission point in the stack. The name is
// the unit of capacity configuration (SetLimit) and shows up as the
// "station" label on the scheduler's telemetry.
const (
	StationPftoolCopy = "pftool.copy"          // worker copy/compare jobs
	StationPftoolTape = "pftool.tape"          // tape-ordered restore jobs
	StationMigrate    = "hsm.migrate"          // per-mover migration streams
	StationRecall     = "hsm.recall"           // per-mover recall sessions
	StationSession    = "tsm.session"          // TSM drive sessions (store/recall)
	StationScrub      = "tsm.scrub"            // scrubber volume passes
	StationReclaim    = "tsm.reclaim"          // reclamation volume passes
	StationReplicate  = "federation.replicate" // WAN replication tasks
)

// Item is one typed unit of archive work submitted for admission.
type Item struct {
	QoS
	Kind     string // e.g. "hsm.recall" — telemetry and trace label
	Units    int64  // cost in bytes (quota charge, WFQ advance); min 1
	Expedite bool   // recall lane: runs before non-expedite work of the same tenant
}

// Grant is an admitted item; Done releases its slot. Check Err first:
// a refused item (deadline passed, brownout shed) carries no slot.
type Grant struct {
	st   *Station
	item Item
	wait simtime.Duration
	err  error
	done bool
}

// Wait reports how long admission queued the item (0 on pass-through).
func (g *Grant) Wait() simtime.Duration { return g.wait }

// Err reports why admission was refused: ErrDeadlineExceeded if the
// deadline passed before a slot was granted, ErrShed if the brownout
// watermark rejected the item. Nil means the grant is live and Done
// must be called.
func (g *Grant) Err() error { return g.err }

// Done releases the grant's dispatch slot, letting the station admit
// the next queued item. Calling Done twice, or on a refused grant, is
// a no-op.
func (g *Grant) Done() {
	if g == nil || g.done || g.err != nil {
		return
	}
	g.done = true
	g.st.inFlight--
	g.st.s.metrics().completed[g.item.Class].Inc()
	if g.st.slots > 0 {
		g.st.pump()
	}
}

// Dispatch is one admission decision, recorded when tracing is on —
// the repeated-run determinism tests compare these logs.
type Dispatch struct {
	Seq     uint64
	At      simtime.Duration
	Station string
	Tenant  string
	Class   Class
	Kind    string
	Units   int64
}

// TenantStat is one (tenant, class) admission record.
type TenantStat struct {
	Tenant  string
	Class   Class
	Items   int64
	Units   int64
	WaitSum simtime.Duration
}

// Scheduler is the per-clock admission layer.
type Scheduler struct {
	clock    *simtime.Clock
	stations map[string]*Station

	weights     map[string]float64 // tenant -> WFQ weight (default 1)
	quotas      map[string]*bucket // tenant -> token bucket (nil = unlimited)
	scavShare   float64            // anti-starvation share for scavenger work
	starveAfter simtime.Duration   // queue wait counted as starvation (0 = off)
	slo         [4]simtime.Duration
	shedMark    [4]simtime.Duration // brownout watermark per class (0 = off)

	acct map[acctKey]*TenantStat

	// Contention ledger: dispatches decided while scavenger work was
	// backlogged — the denominator of the observed scavenger share.
	contScav, contTotal int64

	traceOn bool
	trace   []Dispatch
	seq     uint64

	m *schedMetrics // lazy: telemetry.Of is illegal inside Attach
}

type acctKey struct {
	tenant string
	class  Class
}

// DefaultScavengerShare is the minimum dispatch share reserved for
// backlogged scavenger work on a limited station.
const DefaultScavengerShare = 0.05

func newScheduler(clock *simtime.Clock) *Scheduler {
	return &Scheduler{
		clock:     clock,
		stations:  make(map[string]*Station),
		weights:   make(map[string]float64),
		quotas:    make(map[string]*bucket),
		scavShare: DefaultScavengerShare,
		acct:      make(map[acctKey]*TenantStat),
	}
}

// Clock returns the clock the scheduler is attached to.
func (s *Scheduler) Clock() *simtime.Clock { return s.clock }

// Station finds or creates the named admission point. New stations
// are pass-through until SetLimit gives them a slot budget.
func (s *Scheduler) Station(name string) *Station {
	if st, ok := s.stations[name]; ok {
		return st
	}
	st := &Station{s: s, name: name}
	for i := range st.lanes {
		st.lanes[i].tenants = make(map[string]*tenantQ)
	}
	s.stations[name] = st
	m := s.metrics()
	m.reg.GaugeFunc("sched_in_flight", func() float64 { return float64(st.inFlight) }, "station", name)
	m.reg.GaugeFunc("sched_station_queued", func() float64 { return float64(st.queued) }, "station", name)
	return st
}

// SetLimit bounds the station to n concurrent grants (0 restores
// pass-through). Lowering the limit never revokes live grants; the
// station just stops admitting until enough of them finish.
func (s *Scheduler) SetLimit(station string, n int) {
	st := s.Station(station)
	st.slots = n
	if n > 0 {
		st.pump()
	} else {
		// Pass-through again: drain everyone still queued.
		st.drainAll()
	}
}

// SetTenantWeight sets a tenant's WFQ weight (default 1; w <= 0 resets).
func (s *Scheduler) SetTenantWeight(tenant string, w float64) {
	if w <= 0 {
		delete(s.weights, tenant)
		return
	}
	s.weights[tenant] = w
}

// SetQuota installs a token bucket for the tenant: a long-run rate in
// units/second and a burst allowance. rate <= 0 removes the quota.
// Quotas only bind on limited stations; pass-through admission never
// waits.
func (s *Scheduler) SetQuota(tenant string, rate, burst float64) {
	if rate <= 0 {
		delete(s.quotas, tenant)
		return
	}
	if burst < 1 {
		burst = 1
	}
	s.quotas[tenant] = &bucket{rate: rate, burst: burst, tokens: burst, last: s.clock.Now()}
}

// SetScavengerShare sets the anti-starvation dispatch share reserved
// for backlogged scavenger work.
func (s *Scheduler) SetScavengerShare(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	s.scavShare = f
}

// ScavengerShare reports the configured anti-starvation share.
func (s *Scheduler) ScavengerShare() float64 { return s.scavShare }

// SetStarvationThreshold makes any admission wait beyond d count on
// the sched_starvation_total counter (0 disables).
func (s *Scheduler) SetStarvationThreshold(d simtime.Duration) { s.starveAfter = d }

// SetShedWatermark arms brownout shedding for the class: on limited
// stations, a new item of the class is refused at admission (ErrShed,
// counted on sched_shed_total) whenever the class's oldest queued item
// has already been waiting longer than d. Shedding the low classes at
// the door is what keeps interactive latency bounded through overload
// — the queue the watermark bounds is exactly the queue interactive
// work never stands in, because dispatch is strict-priority. d = 0
// disables (the default; unconfigured stations never shed).
func (s *Scheduler) SetShedWatermark(c Class, d simtime.Duration) {
	if c > ClassUnset && int(c) < len(s.shedMark) {
		if d < 0 {
			d = 0
		}
		s.shedMark[c] = d
	}
}

// SetSLO sets the class's queue-wait objective; dispatches that
// waited longer count on sched_slo_violations_total (0 disables).
func (s *Scheduler) SetSLO(c Class, d simtime.Duration) {
	if c > ClassUnset && int(c) < len(s.slo) {
		s.slo[c] = d
	}
}

// EnableTrace starts recording every admission decision.
func (s *Scheduler) EnableTrace() { s.traceOn = true }

// TraceLog returns the admission decisions recorded since EnableTrace.
func (s *Scheduler) TraceLog() []Dispatch { return s.trace }

// TenantStats returns per-(tenant, class) admission totals, sorted by
// tenant then class — the fairness-index input.
func (s *Scheduler) TenantStats() []TenantStat {
	out := make([]TenantStat, 0, len(s.acct))
	for _, a := range s.acct {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// ContentionStats reports how many dispatches were decided while
// scavenger work was backlogged, and how many of those went to the
// scavenger lane — observed share = scav/total.
func (s *Scheduler) ContentionStats() (scav, total int64) { return s.contScav, s.contTotal }

// Queued totals items waiting for admission across all stations.
func (s *Scheduler) Queued() int {
	n := 0
	for _, st := range s.stations {
		n += st.queued
	}
	return n
}

// schedMetrics bundles the scheduler's telemetry handles, created on
// first use from normal (non-Attach) context.
type schedMetrics struct {
	reg        *telemetry.Registry
	submitted  [4]*telemetry.Counter
	dispatched [4]*telemetry.Counter
	completed  [4]*telemetry.Counter
	queuedG    [4]*telemetry.Gauge
	wait       [4]*telemetry.Summary
	starved    [4]*telemetry.Counter
	sloViol    [4]*telemetry.Counter
	scavCredit *telemetry.Counter
	shed       [4]*telemetry.Counter // lazy: only overload runs shed
}

// shedCtr returns the class's sched_shed_total counter, registering it
// on first shed so unconfigured runs keep their telemetry snapshots
// unchanged.
func (m *schedMetrics) shedCtr(c Class) *telemetry.Counter {
	if m.shed[c] == nil {
		m.shed[c] = m.reg.Counter("sched_shed_total", "class", c.String())
	}
	return m.shed[c]
}

func (s *Scheduler) metrics() *schedMetrics {
	if s.m != nil {
		return s.m
	}
	reg := telemetry.Of(s.clock)
	m := &schedMetrics{reg: reg}
	for _, c := range classOrder {
		lbl := c.String()
		m.submitted[c] = reg.Counter("sched_submitted_total", "class", lbl)
		m.dispatched[c] = reg.Counter("sched_dispatched_total", "class", lbl)
		m.completed[c] = reg.Counter("sched_completed_total", "class", lbl)
		m.queuedG[c] = reg.Gauge("sched_queued", "class", lbl)
		m.wait[c] = reg.Summary("sched_queue_wait_seconds", "class", lbl)
		m.starved[c] = reg.Counter("sched_starvation_total", "class", lbl)
		m.sloViol[c] = reg.Counter("sched_slo_violations_total", "class", lbl)
		// Config gauges for the live operator plane: a scraper can see
		// the objectives the violation counters are judged against
		// (and watch an /ops retune land) without any report.
		c := c
		reg.GaugeFunc("sched_slo_seconds", func() float64 { return s.slo[c].Seconds() }, "class", lbl)
	}
	reg.GaugeFunc("sched_starvation_threshold_seconds", func() float64 { return s.starveAfter.Seconds() })
	reg.GaugeFunc("sched_scavenger_share", func() float64 { return s.scavShare })
	m.scavCredit = reg.Counter("sched_scavenger_credit_grants_total")
	s.m = m
	return m
}

// bucket is a token bucket charged in item units, refilled lazily on
// the virtual clock. Tokens may go negative (a single oversized item
// is admitted whenever the bucket is positive) — the tenant then
// waits out the deficit, which is what bounds its long-run rate.
type bucket struct {
	rate   float64 // units per second
	burst  float64
	tokens float64
	last   simtime.Duration
}

func (b *bucket) refill(now simtime.Duration) {
	if now > b.last {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*(now-b.last).Seconds())
		b.last = now
	}
}

// refillAt returns the virtual time the bucket turns positive.
func (b *bucket) refillAt(now simtime.Duration) simtime.Duration {
	if b.tokens > 0 {
		return now
	}
	need := -b.tokens / b.rate // seconds until tokens > 0
	return now + simtime.Duration(need*float64(simtime.Duration(1e9))) + simtime.Duration(1e6)
}

// waiter is one blocked Admit call.
type waiter struct {
	item     Item
	enq      simtime.Duration
	latch    simtime.Latch
	rejected error // set before Signal when the queue cancels the item
}

// wfifo is a head-indexed FIFO of waiters (simtime's fifo shape).
type wfifo struct {
	buf  []*waiter
	head int
}

func (q *wfifo) len() int       { return len(q.buf) - q.head }
func (q *wfifo) front() *waiter { return q.buf[q.head] }
func (q *wfifo) push(w *waiter) { q.buf = append(q.buf, w) }
func (q *wfifo) pop() *waiter {
	w := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return w
}

// tenantQ is one tenant's backlog within a station lane.
type tenantQ struct {
	name      string
	exp, norm wfifo   // expedite (recall) items run first
	vtag      float64 // WFQ virtual start tag of the next item
}

func (t *tenantQ) empty() bool { return t.exp.len() == 0 && t.norm.len() == 0 }

func (t *tenantQ) head() *waiter {
	if t.exp.len() > 0 {
		return t.exp.front()
	}
	return t.norm.front()
}

func (t *tenantQ) pop() *waiter {
	if t.exp.len() > 0 {
		return t.exp.pop()
	}
	return t.norm.pop()
}

// lane is one QoS class's queue state within a station.
type lane struct {
	v       float64 // lane virtual time: start tag of the last dispatch
	tenants map[string]*tenantQ
	active  []*tenantQ // tenants with backlog, sorted by name
}

func (l *lane) backlogged() bool { return len(l.active) > 0 }

func (l *lane) activate(t *tenantQ) {
	i := sort.Search(len(l.active), func(i int) bool { return l.active[i].name >= t.name })
	if i < len(l.active) && l.active[i] == t {
		return
	}
	l.active = append(l.active, nil)
	copy(l.active[i+1:], l.active[i:])
	l.active[i] = t
}

func (l *lane) deactivate(t *tenantQ) {
	i := sort.Search(len(l.active), func(i int) bool { return l.active[i].name >= t.name })
	if i < len(l.active) && l.active[i] == t {
		l.active = append(l.active[:i], l.active[i+1:]...)
	}
}

// Station is one named admission point.
type Station struct {
	s    *Scheduler
	name string

	slots    int // 0 = pass-through
	inFlight int
	queued   int

	lanes    [4]lane // indexed by Class; ClassUnset never populated
	scavDebt float64
	dlQueued int // queued waiters carrying a deadline (fast path skip)

	timerCancel func()
	timerAt     simtime.Duration
	dlCancel    func() // deadline-cancel wake timer
	dlAt        simtime.Duration

	ctrDeadline *telemetry.Counter // lazy: only deadline runs cancel
}

// deadlineCtr returns the station's deadline_exceeded_total counter,
// registered on first cancellation so unconfigured runs keep their
// telemetry snapshots unchanged.
func (st *Station) deadlineCtr() *telemetry.Counter {
	if st.ctrDeadline == nil {
		st.ctrDeadline = st.s.metrics().reg.Counter("deadline_exceeded_total", "station", st.name)
	}
	return st.ctrDeadline
}

// Name returns the station's name.
func (st *Station) Name() string { return st.name }

// InFlight reports the number of live grants.
func (st *Station) InFlight() int { return st.inFlight }

// Limit reports the slot budget (0 = pass-through).
func (st *Station) Limit() int { return st.slots }

// Admit blocks the calling actor until the scheduler grants the item
// a dispatch slot, and returns the grant; call Done when the work
// finishes. On a pass-through station the grant is immediate — no
// virtual time passes and no events are scheduled, so an unlimited
// station is invisible to the simulation.
func (st *Station) Admit(it Item) *Grant {
	it.QoS = it.QoS.Or(Batch)
	if it.Units < 1 {
		it.Units = 1
	}
	s := st.s
	m := s.metrics()
	m.submitted[it.Class].Inc()
	a := s.account(it)
	a.Items++
	a.Units += it.Units

	if it.Deadline > 0 && s.clock.Now() >= it.Deadline {
		// Already doomed on arrival: refuse without taking a slot.
		st.deadlineCtr().Inc()
		return &Grant{st: st, item: it, err: ErrDeadlineExceeded}
	}
	if mark := s.shedMark[it.Class]; mark > 0 && st.slots > 0 &&
		st.classWait(it.Class, s.clock.Now()) > mark {
		m.shedCtr(it.Class).Inc()
		return &Grant{st: st, item: it, err: ErrShed}
	}

	if st.slots <= 0 {
		// Pass-through: immediate grant. Skip the zero queue-wait
		// observation — a million exact zeros tell us nothing and the
		// summary would hold them all.
		st.inFlight++
		st.noteDispatch(it, 0)
		return &Grant{st: st, item: it}
	}

	w := &waiter{item: it, enq: s.clock.Now(), latch: simtime.MakeLatch(s.clock)}
	st.enqueue(w)
	st.pump()
	w.latch.Wait()
	wait := s.clock.Now() - w.enq
	if w.rejected != nil {
		return &Grant{st: st, item: it, wait: wait, err: w.rejected}
	}
	a.WaitSum += wait
	return &Grant{st: st, item: it, wait: wait}
}

// classWait reports how long the class's oldest queued item has been
// waiting at the station — the brownout signal SetShedWatermark
// compares against.
func (st *Station) classWait(c Class, now simtime.Duration) simtime.Duration {
	var oldest simtime.Duration = -1
	for _, tq := range st.lanes[c].active {
		if e := tq.head().enq; oldest < 0 || e < oldest {
			oldest = e
		}
	}
	if oldest < 0 {
		return 0
	}
	return now - oldest
}

func (st *Station) enqueue(w *waiter) {
	ln := &st.lanes[w.item.Class]
	tq, ok := ln.tenants[w.item.Tenant]
	if !ok {
		tq = &tenantQ{name: w.item.Tenant}
		ln.tenants[w.item.Tenant] = tq
	}
	if w.item.Expedite {
		tq.exp.push(w)
	} else {
		tq.norm.push(w)
	}
	ln.activate(tq)
	st.queued++
	if w.item.Deadline > 0 {
		st.dlQueued++
	}
	st.s.metrics().queuedG[w.item.Class].Add(1)
}

// pump grants queued items while slots are free and someone is
// eligible, then (if work remains but every backlogged tenant is
// quota-throttled) arms a wake timer at the earliest token refill.
// Expired deadlines are purged first so a doomed item never takes a
// slot ahead of live work.
func (st *Station) pump() {
	st.expireDeadlines()
	for st.slots > 0 && st.inFlight < st.slots && st.queued > 0 {
		w, scavCredit := st.pick()
		if w == nil {
			break
		}
		st.grant(w, scavCredit)
	}
	st.armQuotaTimer()
	st.armDeadlineTimer()
}

// expireDeadlines cancels queued items whose deadline passed while
// they waited: the waiter is signalled with ErrDeadlineExceeded and
// counted on deadline_exceeded_total. Only queue heads are examined —
// per-tenant FIFO order means an expired head is cancelled as soon as
// the station wakes, and buried items surface as heads in turn.
func (st *Station) expireDeadlines() {
	if st.dlQueued == 0 {
		return
	}
	now := st.s.clock.Now()
	for i := range st.lanes {
		ln := &st.lanes[i]
		for j := 0; j < len(ln.active); {
			tq := ln.active[j]
			for !tq.empty() {
				w := tq.head()
				if w.item.Deadline <= 0 || now < w.item.Deadline {
					break
				}
				tq.pop()
				st.cancelWaiter(w)
			}
			if tq.empty() {
				ln.deactivate(tq) // shifts the next tenant into slot j
			} else {
				j++
			}
		}
	}
}

// cancelWaiter removes a queued item from the station's accounting and
// wakes its Admit call with a deadline refusal.
func (st *Station) cancelWaiter(w *waiter) {
	st.queued--
	st.dlQueued--
	st.s.metrics().queuedG[w.item.Class].Add(-1)
	st.deadlineCtr().Inc()
	w.rejected = ErrDeadlineExceeded
	w.latch.Signal()
}

// armDeadlineTimer schedules a pump at the earliest queued deadline so
// cancellation does not wait for the next slot to free. Like the quota
// timer this arms nothing when no queued item carries a deadline, so
// deadline-free runs schedule no extra events.
func (st *Station) armDeadlineTimer() {
	if st.slots <= 0 || st.dlQueued == 0 {
		st.disarmDeadlineTimer()
		return
	}
	var wake simtime.Duration
	found := false
	for i := range st.lanes {
		for _, tq := range st.lanes[i].active {
			if dl := tq.head().item.Deadline; dl > 0 && (!found || dl < wake) {
				wake, found = dl, true
			}
		}
	}
	if !found {
		st.disarmDeadlineTimer()
		return
	}
	if st.dlCancel != nil {
		if st.dlAt <= wake {
			return // an earlier-or-equal wake is already armed
		}
		st.disarmDeadlineTimer()
	}
	st.dlAt = wake
	st.dlCancel = st.s.clock.Callback(wake, func() {
		st.dlCancel = nil
		st.pump()
	})
}

func (st *Station) disarmDeadlineTimer() {
	if st.dlCancel != nil {
		st.dlCancel()
		st.dlCancel = nil
	}
}

// pick selects the next admission per policy; nil if nothing is
// eligible (backlogged tenants all quota-throttled). The second
// result reports whether the anti-starvation credit forced a
// scavenger pick over backlogged higher-class work.
func (st *Station) pick() (*waiter, bool) {
	s := st.s
	now := s.clock.Now()
	scav := &st.lanes[Scavenger]
	higherBacklog := st.lanes[Interactive].backlogged() || st.lanes[Batch].backlogged()
	if scav.backlogged() && st.scavDebt >= 1 {
		if tq := st.pickTenant(scav, now); tq != nil {
			return tq.head(), higherBacklog
		}
	}
	for _, c := range classOrder {
		ln := &st.lanes[c]
		if !ln.backlogged() {
			continue
		}
		if tq := st.pickTenant(ln, now); tq != nil {
			return tq.head(), false
		}
	}
	return nil, false
}

// pickTenant returns the lane's quota-eligible backlogged tenant with
// the minimum virtual start tag (ties broken by name — the active
// list is name-sorted and the scan keeps the first minimum).
func (st *Station) pickTenant(ln *lane, now simtime.Duration) *tenantQ {
	var best *tenantQ
	for _, tq := range ln.active {
		if b := st.s.quotas[tq.name]; b != nil {
			b.refill(now)
			if b.tokens <= 0 {
				continue
			}
		}
		start := math.Max(ln.v, tq.vtag)
		if best == nil || start < math.Max(ln.v, best.vtag) {
			best = tq
		}
	}
	return best
}

// grant dispatches the head item of the picked waiter's queue.
func (st *Station) grant(w *waiter, scavCredit bool) {
	s := st.s
	it := w.item
	ln := &st.lanes[it.Class]
	tq := ln.tenants[it.Tenant]
	got := tq.pop()
	if got != w {
		panic("sched: picked waiter is not its tenant queue head")
	}
	if tq.empty() {
		ln.deactivate(tq)
	}
	st.queued--
	if it.Deadline > 0 {
		st.dlQueued--
	}
	s.metrics().queuedG[it.Class].Add(-1)

	// Advance the WFQ tags: the dispatched item starts at
	// max(lane.v, tenant.vtag) and the tenant's next start tag moves
	// units/weight past it.
	start := math.Max(ln.v, tq.vtag)
	ln.v = start
	w8 := s.weights[it.Tenant]
	if w8 <= 0 {
		w8 = 1
	}
	tq.vtag = start + float64(it.Units)/w8

	// Charge the quota (may push the bucket negative — that deficit
	// is the rate limit).
	if b := s.quotas[it.Tenant]; b != nil {
		b.refill(s.clock.Now())
		b.tokens -= float64(it.Units)
	}

	// Anti-starvation ledger.
	if it.Class == Scavenger {
		if st.scavDebt >= 1 {
			st.scavDebt -= 1
		}
		if scavCredit {
			s.metrics().scavCredit.Inc()
		}
	} else if st.lanes[Scavenger].backlogged() {
		st.scavDebt += s.scavShare
	}
	if st.lanes[Scavenger].backlogged() || it.Class == Scavenger {
		s.contTotal++
		if it.Class == Scavenger {
			s.contScav++
		}
	}

	st.inFlight++
	st.noteDispatch(it, s.clock.Now()-w.enq)
	w.latch.Signal()
}

// noteDispatch records one admission on the telemetry and trace.
func (st *Station) noteDispatch(it Item, wait simtime.Duration) {
	s := st.s
	m := s.metrics()
	m.dispatched[it.Class].Inc()
	if st.slots > 0 {
		m.wait[it.Class].Observe(wait.Seconds())
		if s.starveAfter > 0 && wait > s.starveAfter {
			m.starved[it.Class].Inc()
		}
		if d := s.slo[it.Class]; d > 0 && wait > d {
			m.sloViol[it.Class].Inc()
		}
	}
	if s.traceOn {
		s.seq++
		s.trace = append(s.trace, Dispatch{
			Seq: s.seq, At: s.clock.Now(), Station: st.name,
			Tenant: it.Tenant, Class: it.Class, Kind: it.Kind, Units: it.Units,
		})
	}
}

// armQuotaTimer schedules a pump at the earliest token refill when
// free slots exist but every backlogged tenant is throttled.
func (st *Station) armQuotaTimer() {
	if st.slots <= 0 || st.queued == 0 || st.inFlight >= st.slots {
		st.disarmTimer()
		return
	}
	now := st.s.clock.Now()
	var wake simtime.Duration
	found := false
	for i := range st.lanes {
		for _, tq := range st.lanes[i].active {
			b := st.s.quotas[tq.name]
			if b == nil {
				continue // eligible tenant exists; pick() would have run
			}
			b.refill(now)
			at := b.refillAt(now)
			if !found || at < wake {
				wake, found = at, true
			}
		}
	}
	if !found {
		st.disarmTimer()
		return
	}
	if st.timerCancel != nil {
		if st.timerAt <= wake {
			return // an earlier-or-equal wake is already armed
		}
		st.disarmTimer()
	}
	st.timerAt = wake
	st.timerCancel = st.s.clock.Callback(wake, func() {
		st.timerCancel = nil
		st.pump()
	})
}

func (st *Station) disarmTimer() {
	if st.timerCancel != nil {
		st.timerCancel()
		st.timerCancel = nil
	}
}

// drainAll grants everything queued immediately (pass-through
// restore): quotas and lanes no longer apply. Items whose deadline
// already passed are cancelled, not granted.
func (st *Station) drainAll() {
	st.disarmTimer()
	st.disarmDeadlineTimer()
	now := st.s.clock.Now()
	for i := range st.lanes {
		ln := &st.lanes[i]
		for len(ln.active) > 0 {
			tq := ln.active[0]
			for !tq.empty() {
				w := tq.pop()
				if w.item.Deadline > 0 && now >= w.item.Deadline {
					st.cancelWaiter(w)
					continue
				}
				st.queued--
				if w.item.Deadline > 0 {
					st.dlQueued--
				}
				st.s.metrics().queuedG[w.item.Class].Add(-1)
				st.inFlight++
				st.noteDispatch(w.item, st.s.clock.Now()-w.enq)
				w.latch.Signal()
			}
			ln.deactivate(tq)
		}
	}
}

func (s *Scheduler) account(it Item) *TenantStat {
	k := acctKey{it.Tenant, it.Class}
	a, ok := s.acct[k]
	if !ok {
		a = &TenantStat{Tenant: it.Tenant, Class: it.Class}
		s.acct[k] = a
	}
	return a
}
