package sched

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// privateEnqueue lists the textual signatures of "private admission":
// the ways a subsystem used to queue archive work without the
// scheduler seeing it. Every file that still legitimately contains one
// is frozen in the allowlist — those sites sit DOWNSTREAM of a
// sched.Station.Admit (drive-pool waits after admission, worker
// mailboxes fed by admitted producers). New code must submit work
// through sched.Of(clock) instead of growing a private queue. Shrink
// these lists; never grow them.
var privateEnqueue = []struct {
	pattern string
	allowed map[string]bool // path relative to internal/
}{
	{"drvPool.Acquire(", map[string]bool{
		"tsm/tsm.go":      true, // drive waits inside admitted sessions
		"tsm/scrub.go":    true, // per-volume scan, admitted at StationScrub
		"tsm/reclaim.go":  true, // per-volume move, admitted at StationReclaim
		"tsm/replica.go":  true, // replica read under the caller's grant
		"tsm/copypool.go": true, // copy-pool writes under the caller's grant
	}},
	{"copyQ = append", map[string]bool{
		"pftool/manager.go": true, // run-internal work list; workers admit at dispatch
	}},
	{"dirQ = append", map[string]bool{
		"pftool/manager.go": true, // directory scan list (metadata, not data movement)
	}},
	{"tapeQ = append", map[string]bool{
		"pftool/manager.go": true, // run-internal work list; tapeProc admits at dispatch
	}},
	{"simtime.NewQueue(", map[string]bool{
		"federation/replicate.go": true, // per-site mailbox; replicate() admits per item
		"mpi/mpi.go":              true, // message-passing rank mailboxes, not admission
	}},
}

// TestNoPrivateAdmissionPaths enforces the unified-admission refactor:
// outside the frozen allowlist, no file under internal/ may enqueue
// archive work through a subsystem-private queue. A new demand source
// that bypasses the scheduler fails here.
func TestNoPrivateAdmissionPaths(t *testing.T) {
	root := ".." // internal/
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, "sched/") || strings.HasPrefix(rel, "simtime/") {
			// The scheduler itself and the queue primitive it is built
			// on are the sanctioned owners.
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, pe := range privateEnqueue {
			if strings.Contains(string(src), pe.pattern) && !pe.allowed[rel] {
				t.Errorf("internal/%s contains %q: submit work through sched.Of(clock) instead of a private queue (or, if this site is provably downstream of an admission, freeze it in lint_test.go with a justification)", rel, pe.pattern)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
