package sched

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestDeadlineRejectedAtAdmit(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	st := s.Station("test")
	s.SetLimit("test", 1)
	var got error
	c.Go(func() {
		c.Sleep(10 * time.Second)
		g := st.Admit(Item{Kind: "x", QoS: QoS{Deadline: 5 * time.Second}})
		got = g.Err()
		g.Done() // must be a no-op on a refused grant
	})
	c.RunFor()
	if !errors.Is(got, ErrDeadlineExceeded) {
		t.Fatalf("Err = %v, want ErrDeadlineExceeded", got)
	}
	if st.InFlight() != 0 {
		t.Fatalf("refused grant holds a slot: inFlight=%d", st.InFlight())
	}
}

func TestDeadlineCancelsQueuedItemWhenItExpires(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	st := s.Station("test")
	s.SetLimit("test", 1)
	var rejectedAt simtime.Duration = -1
	var got error
	c.Go(func() {
		// Occupy the only slot well past the second item's deadline.
		g := st.Admit(Item{Kind: "hold"})
		c.Sleep(time.Minute)
		g.Done()
	})
	c.Go(func() {
		g := st.Admit(Item{Kind: "doomed", QoS: QoS{Deadline: 10 * time.Second}})
		got = g.Err()
		rejectedAt = c.Now()
	})
	c.RunFor()
	if !errors.Is(got, ErrDeadlineExceeded) {
		t.Fatalf("queued item got %v, want ErrDeadlineExceeded", got)
	}
	// The deadline timer must cancel it AT the deadline, not when the
	// slot frees at t=1m.
	if rejectedAt != 10*time.Second {
		t.Fatalf("cancelled at %v, want 10s (the deadline, via the wake timer)", rejectedAt)
	}
	if s.Queued() != 0 {
		t.Fatalf("queue not drained: %d", s.Queued())
	}
}

func TestDeadlineItemGrantedWhenSlotFreesInTime(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	st := s.Station("test")
	s.SetLimit("test", 1)
	var got error = errors.New("never ran")
	c.Go(func() {
		g := st.Admit(Item{Kind: "hold"})
		c.Sleep(5 * time.Second)
		g.Done()
	})
	c.Go(func() {
		g := st.Admit(Item{Kind: "ok", QoS: QoS{Deadline: 30 * time.Second}})
		got = g.Err()
		g.Done()
	})
	c.RunFor()
	if got != nil {
		t.Fatalf("item with slack got %v, want grant", got)
	}
}

func TestShedWatermarkRejectsBackloggedClass(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	st := s.Station("test")
	s.SetLimit("test", 1)
	s.SetShedWatermark(Batch, 10*time.Second)
	var batchErr, interErr error = errors.New("unset"), errors.New("unset")
	c.Go(func() {
		// Slot holder, plus one queued batch item that will age past the
		// watermark.
		g := st.Admit(Item{Kind: "hold", QoS: QoS{Class: Batch}})
		c.Sleep(time.Minute)
		g.Done()
	})
	c.Go(func() {
		g := st.Admit(Item{Kind: "queued", QoS: QoS{Class: Batch}})
		g.Done()
	})
	c.Go(func() {
		// Arrives when the queued batch item has waited 30s > 10s: shed.
		c.Sleep(30 * time.Second)
		g := st.Admit(Item{Kind: "late-batch", QoS: QoS{Class: Batch}})
		batchErr = g.Err()
		g.Done()
	})
	c.Go(func() {
		// Interactive has no watermark: it queues and is eventually
		// granted despite the batch backlog.
		c.Sleep(30 * time.Second)
		g := st.Admit(Item{Kind: "late-inter", QoS: QoS{Class: Interactive}})
		interErr = g.Err()
		g.Done()
	})
	c.RunFor()
	if !errors.Is(batchErr, ErrShed) {
		t.Fatalf("late batch item got %v, want ErrShed", batchErr)
	}
	if interErr != nil {
		t.Fatalf("interactive item got %v, want grant (no watermark on its class)", interErr)
	}
}

func TestOverloadAccountingBalances(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	st := s.Station("test")
	s.SetLimit("test", 1)
	s.SetShedWatermark(Batch, 5*time.Second)
	for i := 0; i < 3; i++ {
		c.Go(func() {
			g := st.Admit(Item{Kind: "work", QoS: QoS{Class: Batch}})
			if g.Err() != nil {
				return
			}
			c.Sleep(20 * time.Second)
			g.Done()
		})
	}
	c.Go(func() {
		g := st.Admit(Item{Kind: "doomed", QoS: QoS{Class: Batch, Deadline: 8 * time.Second}})
		if g.Err() == nil {
			g.Done()
		}
	})
	c.RunFor()
	m := s.metrics()
	sub := m.submitted[Batch].Value()
	comp := m.completed[Batch].Value()
	var shed float64
	if m.shed[Batch] != nil {
		shed = m.shed[Batch].Value()
	}
	var dl float64
	if st.ctrDeadline != nil {
		dl = st.ctrDeadline.Value()
	}
	if sub != comp+shed+dl {
		t.Fatalf("accounting: submitted %v != completed %v + shed %v + deadline %v", sub, comp, shed, dl)
	}
	if shed == 0 && dl == 0 {
		t.Fatal("test exercised neither shed nor deadline path")
	}
}
