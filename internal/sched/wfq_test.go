package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/simtime"
)

// The WFQ invariants, tested as randomized properties:
//
//  1. work conservation — a limited station with backlog never idles
//     a slot, so with unit service times the makespan is exactly
//     totalWork/slots;
//  2. weight-proportional long-run shares — continuously backlogged
//     tenants complete work in proportion to their configured
//     weights;
//  3. isolation — a tenant's own backlog never delays another
//     tenant's first item by more than the residual service of the
//     items already running.

func TestWFQWorkConservation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := simtime.NewClock()
		s := Of(c)
		slots := 1 + rng.Intn(4)
		s.SetLimit("wc", slots)
		st := s.Station("wc")
		service := time.Second
		n := slots * (10 + rng.Intn(40))
		for i := 0; i < n; i++ {
			tenant := fmt.Sprintf("t%d", rng.Intn(6))
			class := classOrder[rng.Intn(3)]
			c.Go(func() {
				g := st.Admit(Item{QoS: QoS{Tenant: tenant, Class: class}, Units: 1 + rng.Int63n(100)})
				c.Sleep(service)
				g.Done()
			})
		}
		end := c.RunFor()
		want := time.Duration(n/slots) * service
		if end != want {
			t.Fatalf("seed %d: makespan %v, want %v (%d unit items / %d slots): a slot idled with backlog present",
				seed, end, want, n, slots)
		}
	}
}

func TestWFQWeightProportionalShares(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := simtime.NewClock()
		s := Of(c)
		slots := 2
		s.SetLimit("shares", slots)
		st := s.Station("shares")
		weights := map[string]float64{"small": 1, "mid": 1 + float64(rng.Intn(3)), "big": 4 + float64(rng.Intn(4))}
		done := map[string]int{}
		for tn, w := range weights {
			s.SetTenantWeight(tn, w)
			_ = tn
		}
		stop := false
		var spawn func(tenant string)
		spawn = func(tenant string) {
			c.Go(func() {
				g := st.Admit(Item{QoS: QoS{Tenant: tenant, Class: Batch}, Units: 10})
				c.Sleep(time.Second)
				g.Done()
				done[tenant]++
				if !stop {
					spawn(tenant)
				}
			})
		}
		// Every tenant continuously backlogged: enough outstanding
		// items each that the queue never empties while others run.
		for tn := range weights {
			for i := 0; i < 8; i++ {
				spawn(tn)
			}
		}
		horizon := 2000 * time.Second
		c.After(horizon, func() { stop = true })
		c.RunFor()
		var wsum float64
		total := 0
		for tn, w := range weights {
			wsum += w
			total += done[tn]
		}
		for tn, w := range weights {
			got := float64(done[tn]) / float64(total)
			want := w / wsum
			if math.Abs(got-want) > 0.08 {
				t.Fatalf("seed %d: tenant %s share %.3f, want %.3f (weights %v, done %v)",
					seed, tn, got, want, weights, done)
			}
		}
	}
}

// TestWFQIdleTenantNeverBlocked: tenant A keeps a deep backlog; B is
// idle until it submits a single item. B's queue wait must be bounded
// by the in-flight residual (one service time per slot), not by A's
// backlog depth — an idle tenant's start tag catches up to lane
// virtual time instead of waiting behind credit A banked.
func TestWFQIdleTenantNeverBlocked(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := simtime.NewClock()
		s := Of(c)
		s.SetLimit("iso", 1)
		st := s.Station("iso")
		service := time.Second
		backlog := 50 + rng.Intn(100)
		for i := 0; i < backlog; i++ {
			c.Go(func() {
				g := st.Admit(Item{QoS: QoS{Tenant: "flood", Class: Batch}, Units: 1000})
				c.Sleep(service)
				g.Done()
			})
		}
		arrive := time.Duration(5+rng.Intn(20)) * time.Second
		var wait simtime.Duration = -1
		c.Go(func() {
			c.Sleep(arrive)
			g := st.Admit(Item{QoS: QoS{Tenant: "idle", Class: Batch}, Units: 1000})
			wait = g.Wait()
			c.Sleep(service)
			g.Done()
		})
		c.RunFor()
		// One slot: at worst the flood item in service finishes, then
		// at most one more flood item that tied on the virtual tag.
		if limit := 2 * service; wait < 0 || wait > limit {
			t.Fatalf("seed %d: idle tenant waited %v behind a %d-deep foreign backlog (limit %v)",
				seed, wait, backlog, limit)
		}
	}
}

// TestWFQRandomizedAllServed drives a random mix of tenants, classes,
// weights and quotas and checks global sanity: everything submitted
// is eventually dispatched and completed, per-tenant accounting
// balances, and the trace is internally consistent.
func TestWFQRandomizedAllServed(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := simtime.NewClock()
		s := Of(c)
		s.EnableTrace()
		s.SetLimit("rand", 1+rng.Intn(3))
		st := s.Station("rand")
		s.SetTenantWeight("t1", 1+rng.Float64()*5)
		s.SetQuota("t2", 50+rng.Float64()*100, 200)
		n := 50 + rng.Intn(150)
		completed := 0
		for i := 0; i < n; i++ {
			tenant := fmt.Sprintf("t%d", rng.Intn(4))
			class := classOrder[rng.Intn(3)]
			delay := time.Duration(rng.Intn(60)) * time.Second
			units := 1 + rng.Int63n(50)
			c.Go(func() {
				c.Sleep(delay)
				g := st.Admit(Item{QoS: QoS{Tenant: tenant, Class: class}, Units: units, Expedite: rng.Intn(4) == 0})
				c.Sleep(time.Duration(1+rng.Intn(5)) * time.Second)
				g.Done()
				completed++
			})
		}
		c.RunFor()
		if completed != n {
			t.Fatalf("seed %d: %d/%d completed", seed, completed, n)
		}
		if got := len(s.TraceLog()); got != n {
			t.Fatalf("seed %d: trace has %d dispatches, want %d", seed, got, n)
		}
		var items int64
		for _, a := range s.TenantStats() {
			items += a.Items
		}
		if items != int64(n) {
			t.Fatalf("seed %d: accounting says %d items, want %d", seed, items, n)
		}
		if s.Queued() != 0 || st.InFlight() != 0 {
			t.Fatalf("seed %d: residue queued=%d inflight=%d", seed, s.Queued(), st.InFlight())
		}
	}
}
