package sched

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/simtime"
)

// runItem admits one item on st, holds the grant for service, and
// appends the tenant to order on dispatch (not completion), so tests
// can assert admission order directly.
func runItem(c *simtime.Clock, st *Station, it Item, service time.Duration, order *[]string) {
	c.Go(func() {
		g := st.Admit(it)
		*order = append(*order, it.Tenant)
		c.Sleep(service)
		g.Done()
	})
}

func TestPassThroughIsImmediate(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	st := s.Station("test")
	var wait simtime.Duration = -1
	var at simtime.Duration = -1
	c.Go(func() {
		c.Sleep(5 * time.Second)
		g := st.Admit(Item{Kind: "x", Units: 100})
		wait = g.Wait()
		at = c.Now()
		g.Done()
	})
	c.RunFor()
	if wait != 0 {
		t.Fatalf("pass-through wait = %v, want 0", wait)
	}
	if at != 5*time.Second {
		t.Fatalf("pass-through grant at %v, want 5s (no virtual time may pass)", at)
	}
	if s.Queued() != 0 || st.InFlight() != 0 {
		t.Fatalf("station not drained: queued=%d inflight=%d", s.Queued(), st.InFlight())
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := simtime.NewClock()
	st := Of(c).Station("test")
	c.Go(func() {
		g := st.Admit(Item{Kind: "x"})
		if g.item.Tenant != DefaultTenant {
			t.Errorf("tenant = %q, want %q", g.item.Tenant, DefaultTenant)
		}
		if g.item.Class != Batch {
			t.Errorf("class = %v, want Batch", g.item.Class)
		}
		if g.item.Units != 1 {
			t.Errorf("units = %d, want 1", g.item.Units)
		}
		g.Done()
		g.Done() // double Done must be a no-op
	})
	c.RunFor()
	if st.InFlight() != 0 {
		t.Fatalf("double Done corrupted inFlight = %d", st.InFlight())
	}
}

func TestStrictClassPriority(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	s.SetLimit("test", 1)
	st := s.Station("test")
	var order []string
	// Occupy the only slot, then queue one of each class (scavenger
	// and batch ahead of interactive in arrival order).
	c.Go(func() {
		g := st.Admit(Item{QoS: QoS{Tenant: "hog", Class: Batch}})
		c.Sleep(10 * time.Second)
		g.Done()
	})
	c.Go(func() {
		c.Sleep(time.Second)
		runItem(c, st, Item{QoS: QoS{Tenant: "scav", Class: Scavenger}}, time.Second, &order)
		runItem(c, st, Item{QoS: QoS{Tenant: "batch", Class: Batch}}, time.Second, &order)
		runItem(c, st, Item{QoS: QoS{Tenant: "inter", Class: Interactive}}, time.Second, &order)
	})
	c.RunFor()
	want := []string{"inter", "batch", "scav"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

func TestExpediteRunsFirstWithinTenant(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	s.SetLimit("test", 1)
	st := s.Station("test")
	var order []string
	c.Go(func() {
		g := st.Admit(Item{QoS: QoS{Tenant: "t", Class: Batch}})
		c.Sleep(10 * time.Second)
		g.Done()
	})
	c.Go(func() {
		c.Sleep(time.Second)
		c.Go(func() {
			g := st.Admit(Item{QoS: QoS{Tenant: "t", Class: Batch}, Kind: "slow"})
			order = append(order, "slow")
			g.Done()
		})
		c.Sleep(time.Second)
		c.Go(func() {
			g := st.Admit(Item{QoS: QoS{Tenant: "t", Class: Batch}, Kind: "recall", Expedite: true})
			order = append(order, "recall")
			g.Done()
		})
	})
	c.RunFor()
	want := []string{"recall", "slow"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

func TestScavengerAntiStarvationShare(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	s.SetLimit("test", 1)
	s.SetScavengerShare(0.2) // 1 in 5 while backlogged
	st := s.Station("test")
	interDone, scavDone := 0, 0
	// Keep both lanes continuously backlogged: each completion
	// resubmits. Count completions over a fixed horizon.
	var spawnInter, spawnScav func()
	stop := false
	spawnInter = func() {
		c.Go(func() {
			g := st.Admit(Item{QoS: QoS{Tenant: "user", Class: Interactive}})
			c.Sleep(time.Second)
			g.Done()
			interDone++
			if !stop {
				spawnInter()
			}
		})
	}
	spawnScav = func() {
		c.Go(func() {
			g := st.Admit(Item{QoS: QoS{Tenant: "scrub", Class: Scavenger}})
			c.Sleep(time.Second)
			g.Done()
			scavDone++
			if !stop {
				spawnScav()
			}
		})
	}
	for i := 0; i < 3; i++ {
		spawnInter()
		spawnScav()
	}
	c.After(500*time.Second, func() { stop = true })
	c.RunFor()
	total := interDone + scavDone
	share := float64(scavDone) / float64(total)
	if share < 0.15 || share > 0.3 {
		t.Fatalf("scavenger share = %.3f (%d/%d), want ~0.2 despite strict interactive priority",
			share, scavDone, total)
	}
	scav, tot := s.ContentionStats()
	if tot == 0 || float64(scav)/float64(tot) < 0.15 {
		t.Fatalf("contention ledger: %d/%d", scav, tot)
	}
}

func TestTokenBucketBoundsTenantRate(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	s.SetLimit("test", 2)
	s.SetQuota("greedy", 1, 1) // 1 unit/s, burst 1
	st := s.Station("test")
	greedy, free := 0, 0
	stop := false
	var spawn func(tenant string, n *int)
	spawn = func(tenant string, n *int) {
		c.Go(func() {
			g := st.Admit(Item{QoS: QoS{Tenant: tenant, Class: Batch}, Units: 10})
			c.Sleep(time.Second)
			g.Done()
			*n++
			if !stop {
				spawn(tenant, n)
			}
		})
	}
	for i := 0; i < 2; i++ {
		spawn("greedy", &greedy)
		spawn("free", &free)
	}
	c.After(1000*time.Second, func() { stop = true })
	c.RunFor()
	// greedy is limited to 1 unit/s = 0.1 items/s => ~100 items in
	// 1000s; free takes the rest of the 2 slots.
	if greedy > 130 || greedy < 70 {
		t.Fatalf("quota'd tenant completed %d items, want ~100", greedy)
	}
	if free < 800 {
		t.Fatalf("unquota'd tenant completed %d items; quota must not throttle others", free)
	}
}

// TestQuotaTimerWakesIdleStation covers the case where the station
// has free slots but every backlogged tenant is out of tokens: the
// refill timer must wake the pump (otherwise the run deadlocks).
func TestQuotaTimerWakesIdleStation(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	s.SetLimit("test", 4)
	s.SetQuota("only", 1, 1)
	st := s.Station("test")
	done := 0
	for i := 0; i < 5; i++ {
		c.Go(func() {
			g := st.Admit(Item{QoS: QoS{Tenant: "only", Class: Batch}, Units: 5})
			g.Done()
			done++
		})
	}
	end := c.RunFor()
	if done != 5 {
		t.Fatalf("completed %d/5 quota'd items", done)
	}
	// 5 items x 5 units at 1 unit/s: the last must wait out ~20s of
	// accumulated deficit.
	if end < 15*time.Second {
		t.Fatalf("run ended at %v; quota cannot have been enforced", end)
	}
}

func TestSetLimitZeroDrainsQueue(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	s.SetLimit("test", 1)
	st := s.Station("test")
	done := 0
	c.Go(func() {
		g := st.Admit(Item{QoS: QoS{Tenant: "a", Class: Batch}})
		c.Sleep(10 * time.Second)
		g.Done()
		done++
	})
	for i := 0; i < 4; i++ {
		c.Go(func() {
			c.Sleep(time.Second)
			g := st.Admit(Item{QoS: QoS{Tenant: "b", Class: Batch}})
			g.Done()
			done++
		})
	}
	c.After(2*time.Second, func() { s.SetLimit("test", 0) })
	end := c.RunFor()
	if done != 5 {
		t.Fatalf("completed %d/5", done)
	}
	if end != 10*time.Second {
		t.Fatalf("ended at %v; queued items must drain at SetLimit(0), not wait", end)
	}
}

func TestStarvationAndSLOCounters(t *testing.T) {
	c := simtime.NewClock()
	s := Of(c)
	s.SetLimit("test", 1)
	s.SetStarvationThreshold(5 * time.Second)
	s.SetSLO(Batch, 2*time.Second)
	st := s.Station("test")
	c.Go(func() {
		g := st.Admit(Item{QoS: QoS{Tenant: "hog", Class: Batch}})
		c.Sleep(10 * time.Second)
		g.Done()
	})
	c.Go(func() {
		c.Sleep(time.Second)
		g := st.Admit(Item{QoS: QoS{Tenant: "late", Class: Batch}}) // waits 9s
		g.Done()
	})
	c.RunFor()
	m := s.metrics()
	if v := m.starved[Batch].Value(); v != 1 {
		t.Fatalf("starvation counter = %v, want 1", v)
	}
	if v := m.sloViol[Batch].Value(); v != 1 {
		t.Fatalf("SLO violation counter = %v, want 1", v)
	}
	if p := m.wait[Batch].Quantile(0.99); p < 8 || p > 10 {
		t.Fatalf("p99 wait = %v s, want ~9", p)
	}
}

func TestTraceAndTenantStatsDeterministic(t *testing.T) {
	run := func() ([]Dispatch, []TenantStat) {
		c := simtime.NewClock()
		s := Of(c)
		s.EnableTrace()
		s.SetLimit("test", 2)
		st := s.Station("test")
		var order []string
		for _, tn := range []string{"c", "a", "b", "a", "c", "b", "a"} {
			tn := tn
			runItem(c, st, Item{QoS: QoS{Tenant: tn, Class: Batch}, Kind: "k", Units: 7}, 3*time.Second, &order)
		}
		c.RunFor()
		return s.TraceLog(), s.TenantStats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("dispatch trace differs across identical runs:\n%v\n%v", t1, t2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("tenant stats differ across identical runs")
	}
	if len(t1) != 7 {
		t.Fatalf("trace has %d dispatches, want 7", len(t1))
	}
}
