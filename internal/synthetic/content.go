// Package synthetic represents file contents symbolically so that the
// archive simulator can move, compare, and corrupt terabyte-scale files
// without materializing their bytes.
//
// A Content is a sequence of extents, each referring to a deterministic
// pseudo-random byte stream identified by a 64-bit seed and an offset
// within that stream. Copying propagates extents; comparison normalizes
// and compares extent lists; and any byte of any extent can be generated
// on demand for spot checks, so the representation behaves exactly like
// real data at five orders of magnitude less cost. Two distinct seed
// streams are treated as never byte-equal, which holds with probability
// 1-2^-64 per block for the splitmix64 generator used here.
package synthetic

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Extent is a run of bytes drawn from one seed stream.
type Extent struct {
	Off     int64  // offset within the file
	Len     int64  // length in bytes
	Seed    uint64 // identifies the generator stream
	SeedOff int64  // offset within the seed stream
}

// Content is an immutable description of file bytes as ordered,
// non-overlapping, gap-free extents. The zero value is empty content.
type Content struct {
	extents []Extent
}

// NewUniform returns content of the given length drawn from the seed
// stream starting at stream offset zero.
func NewUniform(seed uint64, length int64) Content {
	if length < 0 {
		panic("synthetic: negative length")
	}
	if length == 0 {
		return Content{}
	}
	return Content{extents: []Extent{{Off: 0, Len: length, Seed: seed, SeedOff: 0}}}
}

// Len reports the total content length in bytes.
func (c Content) Len() int64 {
	var n int64
	for _, e := range c.extents {
		n += e.Len
	}
	return n
}

// Extents returns a copy of the normalized extent list.
func (c Content) Extents() []Extent {
	out := make([]Extent, len(c.extents))
	copy(out, c.extents)
	return out
}

// Slice returns the sub-content [off, off+length). It panics if the
// range is out of bounds.
func (c Content) Slice(off, length int64) Content {
	if off < 0 || length < 0 || off+length > c.Len() {
		panic(fmt.Sprintf("synthetic: slice [%d,%d) out of bounds of %d", off, off+length, c.Len()))
	}
	if length == 0 {
		return Content{}
	}
	var out []Extent
	var outOff int64
	for _, e := range c.extents {
		if off >= e.Off+e.Len || off+length <= e.Off {
			continue
		}
		start := off
		if e.Off > start {
			start = e.Off
		}
		end := off + length
		if e.Off+e.Len < end {
			end = e.Off + e.Len
		}
		out = append(out, Extent{
			Off:     outOff,
			Len:     end - start,
			Seed:    e.Seed,
			SeedOff: e.SeedOff + (start - e.Off),
		})
		outOff += end - start
	}
	return Content{extents: normalize(out)}
}

// Concat returns the concatenation of c followed by others, in order.
func Concat(parts ...Content) Content {
	var out []Extent
	var off int64
	for _, p := range parts {
		for _, e := range p.extents {
			out = append(out, Extent{Off: off + e.Off, Len: e.Len, Seed: e.Seed, SeedOff: e.SeedOff})
		}
		off += p.Len()
	}
	return Content{extents: normalize(out)}
}

// Overwrite returns c with the range [off, off+repl.Len()) replaced by
// repl. The replaced range must lie within c.
func (c Content) Overwrite(off int64, repl Content) Content {
	rl := repl.Len()
	if off < 0 || off+rl > c.Len() {
		panic("synthetic: overwrite out of bounds")
	}
	head := c.Slice(0, off)
	tail := c.Slice(off+rl, c.Len()-off-rl)
	return Concat(head, repl, tail)
}

// Truncate returns c cut to the given length (which must not exceed
// the current length).
func (c Content) Truncate(length int64) Content {
	return c.Slice(0, length)
}

// Equal reports whether two contents are byte-identical, comparing
// normalized extent lists. Distinct seed streams are treated as
// never-equal (see the package comment).
func (c Content) Equal(d Content) bool {
	a, b := c.extents, d.extents
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Digest returns a 64-bit fingerprint of the content: equal contents
// have equal digests, and distinct contents collide only with hash
// probability.
func (c Content) Digest() uint64 {
	h := fnv.New64a()
	var buf [8 * 4]byte
	for _, e := range c.extents {
		putU64(buf[0:], uint64(e.Off))
		putU64(buf[8:], uint64(e.Len))
		putU64(buf[16:], e.Seed)
		putU64(buf[24:], uint64(e.SeedOff))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// SliceDigests returns the digest of each blockSize-sized slice of the
// content (the last block may be short). Equal contents yield equal
// digest vectors, and a localized corruption perturbs only the digests
// of the blocks it touches, so slice checksums bound the damage to a
// block rather than a whole object.
func (c Content) SliceDigests(blockSize int64) []uint64 {
	if blockSize <= 0 {
		panic("synthetic: non-positive block size")
	}
	total := c.Len()
	if total == 0 {
		return nil
	}
	out := make([]uint64, 0, (total+blockSize-1)/blockSize)
	for off := int64(0); off < total; off += blockSize {
		n := blockSize
		if off+n > total {
			n = total - off
		}
		out = append(out, c.Slice(off, n).Digest())
	}
	return out
}

// FirstDiff returns the offset of the first byte at which a and b
// differ, or -1 if they are byte-identical. As with Equal, bytes drawn
// from different points of the seed-stream space are treated as always
// differing, so the answer is the first offset where the stream mapping
// of the two contents diverges (or the shorter length if one is a
// prefix of the other).
func FirstDiff(a, b Content) int64 {
	ae, be := a.extents, b.extents
	var pos int64
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		ea, eb := ae[i], be[j]
		if ea.Seed != eb.Seed || ea.SeedOff+(pos-ea.Off) != eb.SeedOff+(pos-eb.Off) {
			return pos
		}
		endA, endB := ea.Off+ea.Len, eb.Off+eb.Len
		if endA <= endB {
			i++
		}
		if endB <= endA {
			j++
		}
		if endA < endB {
			pos = endA
		} else {
			pos = endB
		}
	}
	if a.Len() != b.Len() {
		if a.Len() < b.Len() {
			return a.Len()
		}
		return b.Len()
	}
	return -1
}

// corruptSalt perturbs seeds and digests so that corrupted data is
// deterministically distinct from its source.
const corruptSalt = 0xBADB10CC0220F7ED

// Corrupt returns c with n bytes starting at off replaced by a rot
// stream derived deterministically from the stream that fed off — the
// simulator's model of silent media bit rot. The damaged range is
// clamped to the content length; corrupting empty content returns it
// unchanged.
func (c Content) Corrupt(off, n int64) Content {
	total := c.Len()
	if off < 0 || off >= total || n <= 0 {
		return c
	}
	if off+n > total {
		n = total - off
	}
	var src Extent
	for _, e := range c.extents {
		if off >= e.Off && off < e.Off+e.Len {
			src = e
			break
		}
	}
	rotSeed := splitmix64(src.Seed ^ corruptSalt ^ uint64(src.SeedOff+(off-src.Off)))
	return c.Overwrite(off, NewUniform(rotSeed, n))
}

// CorruptDigest returns the digest a reader observes when the data
// behind sum was silently corrupted: a deterministic mangling that is
// never equal to the input (the corrupt stream is a different seed
// stream, so its digest differs from the original's with hash
// probability). Subsystems that track data only as a checksum — tape
// blocks, fabric flows — use this to model corruption without
// materializing content.
func CorruptDigest(sum uint64) uint64 {
	m := splitmix64(sum ^ corruptSalt)
	if m == sum {
		m++
	}
	return m
}

// ReadAt generates the actual bytes of the content at off into p,
// returning the number of bytes produced (short at EOF).
func (c Content) ReadAt(p []byte, off int64) int {
	total := c.Len()
	if off >= total {
		return 0
	}
	n := int64(len(p))
	if off+n > total {
		n = total - off
	}
	// Locate extents overlapping [off, off+n).
	idx := sort.Search(len(c.extents), func(i int) bool {
		return c.extents[i].Off+c.extents[i].Len > off
	})
	written := int64(0)
	for i := idx; i < len(c.extents) && written < n; i++ {
		e := c.extents[i]
		start := off + written
		rel := start - e.Off
		chunk := e.Len - rel
		if chunk > n-written {
			chunk = n - written
		}
		generate(p[written:written+chunk], e.Seed, e.SeedOff+rel)
		written += chunk
	}
	return int(written)
}

// ByteAt generates the single byte at offset off.
func (c Content) ByteAt(off int64) byte {
	var b [1]byte
	if c.ReadAt(b[:], off) != 1 {
		panic("synthetic: ByteAt out of bounds")
	}
	return b[0]
}

// generate fills p with stream bytes starting at streamOff of seed.
func generate(p []byte, seed uint64, streamOff int64) {
	i := int64(0)
	for i < int64(len(p)) {
		abs := streamOff + i
		block := abs >> 3
		word := splitmix64(seed + uint64(block)*0x9E3779B97F4A7C15)
		rem := abs & 7
		for rem < 8 && i < int64(len(p)) {
			p[i] = byte(word >> (8 * uint(rem)))
			i++
			rem++
		}
	}
}

// splitmix64 is the SplitMix64 finalizer: a high-quality, fast mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// normalize sorts extents by offset and merges adjacent extents that
// are contiguous in both file space and the same seed stream.
func normalize(in []Extent) []Extent {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Off < in[j].Off })
	out := in[:1]
	for _, e := range in[1:] {
		last := &out[len(out)-1]
		if e.Seed == last.Seed &&
			e.Off == last.Off+last.Len &&
			e.SeedOff == last.SeedOff+last.Len {
			last.Len += e.Len
			continue
		}
		out = append(out, e)
	}
	return out
}

// String renders a compact description for debugging.
func (c Content) String() string {
	if len(c.extents) == 0 {
		return "synthetic.Content{}"
	}
	s := "synthetic.Content{"
	for i, e := range c.extents {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("[%d+%d s=%x@%d]", e.Off, e.Len, e.Seed, e.SeedOff)
	}
	return s + "}"
}
