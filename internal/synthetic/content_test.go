package synthetic

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewUniformLen(t *testing.T) {
	c := NewUniform(42, 1000)
	if c.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", c.Len())
	}
	if NewUniform(1, 0).Len() != 0 {
		t.Error("zero-length content should have Len 0")
	}
}

func TestReadAtDeterministic(t *testing.T) {
	c := NewUniform(7, 4096)
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	if n := c.ReadAt(a, 0); n != 4096 {
		t.Fatalf("ReadAt = %d, want 4096", n)
	}
	c.ReadAt(b, 0)
	if !bytes.Equal(a, b) {
		t.Error("two reads of the same content differ")
	}
}

func TestReadAtUnalignedMatchesAligned(t *testing.T) {
	c := NewUniform(99, 1024)
	full := make([]byte, 1024)
	c.ReadAt(full, 0)
	for _, off := range []int64{1, 3, 7, 8, 13, 511, 1000} {
		part := make([]byte, 17)
		n := c.ReadAt(part, off)
		if !bytes.Equal(part[:n], full[off:off+int64(n)]) {
			t.Errorf("unaligned read at %d disagrees with full read", off)
		}
	}
}

func TestReadAtShortAtEOF(t *testing.T) {
	c := NewUniform(5, 10)
	p := make([]byte, 20)
	if n := c.ReadAt(p, 4); n != 6 {
		t.Errorf("ReadAt near EOF = %d, want 6", n)
	}
	if n := c.ReadAt(p, 10); n != 0 {
		t.Errorf("ReadAt at EOF = %d, want 0", n)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewUniform(1, 256)
	b := NewUniform(2, 256)
	pa := make([]byte, 256)
	pb := make([]byte, 256)
	a.ReadAt(pa, 0)
	b.ReadAt(pb, 0)
	if bytes.Equal(pa, pb) {
		t.Error("different seeds produced identical bytes")
	}
	if a.Equal(b) {
		t.Error("Equal says different seeds match")
	}
	if a.Digest() == b.Digest() {
		t.Error("digests of different seeds collide")
	}
}

func TestSliceMatchesBytes(t *testing.T) {
	c := NewUniform(11, 1000)
	s := c.Slice(100, 300)
	if s.Len() != 300 {
		t.Fatalf("slice Len = %d, want 300", s.Len())
	}
	want := make([]byte, 300)
	c.ReadAt(want, 100)
	got := make([]byte, 300)
	s.ReadAt(got, 0)
	if !bytes.Equal(got, want) {
		t.Error("slice bytes disagree with parent range")
	}
}

func TestConcatRoundTrip(t *testing.T) {
	c := NewUniform(13, 900)
	parts := []Content{c.Slice(0, 300), c.Slice(300, 300), c.Slice(600, 300)}
	joined := Concat(parts...)
	if !joined.Equal(c) {
		t.Errorf("concat of contiguous slices != original: %v vs %v", joined, c)
	}
}

func TestConcatDifferentStreams(t *testing.T) {
	a := NewUniform(1, 100)
	b := NewUniform(2, 100)
	j := Concat(a, b)
	if j.Len() != 200 {
		t.Fatalf("Len = %d, want 200", j.Len())
	}
	got := make([]byte, 200)
	j.ReadAt(got, 0)
	wa := make([]byte, 100)
	wb := make([]byte, 100)
	a.ReadAt(wa, 0)
	b.ReadAt(wb, 0)
	if !bytes.Equal(got[:100], wa) || !bytes.Equal(got[100:], wb) {
		t.Error("concat bytes disagree with parts")
	}
}

func TestOverwriteDetectedByEqual(t *testing.T) {
	orig := NewUniform(21, 1000)
	corrupted := orig.Overwrite(500, NewUniform(9999, 10))
	if corrupted.Equal(orig) {
		t.Error("overwrite not detected")
	}
	if corrupted.Len() != orig.Len() {
		t.Errorf("overwrite changed length: %d", corrupted.Len())
	}
	// Restore the overwritten region from the original and equality
	// must come back (extents re-merge).
	restored := corrupted.Overwrite(500, orig.Slice(500, 10))
	if !restored.Equal(orig) {
		t.Errorf("restore did not round-trip: %v vs %v", restored, orig)
	}
}

func TestTruncate(t *testing.T) {
	c := NewUniform(3, 100)
	tr := c.Truncate(40)
	if tr.Len() != 40 {
		t.Errorf("truncated Len = %d, want 40", tr.Len())
	}
	if !tr.Equal(c.Slice(0, 40)) {
		t.Error("truncate != slice prefix")
	}
}

func TestDigestStableUnderDecomposition(t *testing.T) {
	c := NewUniform(77, 10000)
	re := Concat(c.Slice(0, 1), c.Slice(1, 4999), c.Slice(5000, 5000))
	if re.Digest() != c.Digest() {
		t.Error("digest changed under slice/concat round trip")
	}
}

func TestByteAt(t *testing.T) {
	c := NewUniform(8, 64)
	full := make([]byte, 64)
	c.ReadAt(full, 0)
	for i := int64(0); i < 64; i += 7 {
		if c.ByteAt(i) != full[i] {
			t.Errorf("ByteAt(%d) mismatch", i)
		}
	}
}

// Property: for any split point, slicing and re-concatenating preserves
// equality and digest.
func TestQuickSliceConcatIdentity(t *testing.T) {
	f := func(seed uint64, rawLen uint16, rawCut uint16) bool {
		length := int64(rawLen)%4096 + 1
		cut := int64(rawCut) % (length + 1)
		c := NewUniform(seed, length)
		re := Concat(c.Slice(0, cut), c.Slice(cut, length-cut))
		return re.Equal(c) && re.Digest() == c.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ReadAt over arbitrary windows agrees with a full
// materialization of the content.
func TestQuickReadWindowsAgree(t *testing.T) {
	f := func(seed uint64, rawOff, rawN uint16) bool {
		const length = 2048
		c := NewUniform(seed, length)
		full := make([]byte, length)
		c.ReadAt(full, 0)
		off := int64(rawOff) % length
		n := int64(rawN)%256 + 1
		buf := make([]byte, n)
		got := c.ReadAt(buf, off)
		wantN := n
		if off+wantN > length {
			wantN = length - off
		}
		return int64(got) == wantN && bytes.Equal(buf[:got], full[off:off+int64(got)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: overwrite with random foreign content always breaks
// equality, and overwriting back restores it.
func TestQuickOverwriteRestore(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		length := int64(r.Intn(4000) + 10)
		c := NewUniform(r.Uint64(), length)
		off := int64(r.Intn(int(length)))
		n := int64(r.Intn(int(length-off))) + 1
		bad := c.Overwrite(off, NewUniform(r.Uint64()|1<<63, n))
		if bad.Equal(c) {
			t.Fatalf("iteration %d: corruption not detected", i)
		}
		good := bad.Overwrite(off, c.Slice(off, n))
		if !good.Equal(c) {
			t.Fatalf("iteration %d: restore failed", i)
		}
	}
}

func TestSliceOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewUniform(1, 10).Slice(5, 10)
}

func BenchmarkDigestLargeFile(b *testing.B) {
	// A 40 TB file assembled from 4096 chunks.
	parts := make([]Content, 4096)
	for i := range parts {
		parts[i] = NewUniform(uint64(i), 10<<30)
	}
	c := Concat(parts...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Digest()
	}
}

func BenchmarkReadAt64K(b *testing.B) {
	c := NewUniform(1, 1<<30)
	p := make([]byte, 64<<10)
	b.SetBytes(int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadAt(p, int64(i)%(1<<20))
	}
}

func TestFirstDiff(t *testing.T) {
	a := NewUniform(1, 1000)
	if got := FirstDiff(a, a); got != -1 {
		t.Errorf("identical contents: FirstDiff = %d, want -1", got)
	}
	b := a.Overwrite(400, NewUniform(2, 100))
	if got := FirstDiff(a, b); got != 400 {
		t.Errorf("overwrite at 400: FirstDiff = %d, want 400", got)
	}
	if got := FirstDiff(b, a); got != 400 {
		t.Errorf("FirstDiff is not symmetric: got %d, want 400", got)
	}
	// A prefix diverges at the shorter length.
	if got := FirstDiff(a, a.Slice(0, 600)); got != 600 {
		t.Errorf("prefix: FirstDiff = %d, want 600", got)
	}
	// Same seed, shifted stream offset: differs from byte zero.
	sh := Concat(NewUniform(1, 1008).Slice(8, 1000))
	if got := FirstDiff(a, sh); got != 0 {
		t.Errorf("shifted stream: FirstDiff = %d, want 0", got)
	}
	// Concatenation boundaries must not produce false diffs.
	c := Concat(a.Slice(0, 300), a.Slice(300, 700))
	if got := FirstDiff(a, c); got != -1 {
		t.Errorf("re-concatenated content: FirstDiff = %d, want -1", got)
	}
}

func TestCorrupt(t *testing.T) {
	c := NewUniform(7, 1<<20)
	bad := c.Corrupt(1234, 64)
	if bad.Equal(c) {
		t.Fatal("Corrupt returned equal content")
	}
	if bad.Len() != c.Len() {
		t.Fatalf("Corrupt changed length: %d != %d", bad.Len(), c.Len())
	}
	if got := FirstDiff(c, bad); got != 1234 {
		t.Errorf("FirstDiff after Corrupt = %d, want 1234", got)
	}
	if bad.Digest() == c.Digest() {
		t.Error("corrupted content has the same digest")
	}
	// Deterministic: same rot twice is the same rot.
	if !bad.Equal(c.Corrupt(1234, 64)) {
		t.Error("Corrupt is not deterministic")
	}
	// Clamped at EOF, no-op out of bounds.
	if got := c.Corrupt(c.Len()-10, 100).Len(); got != c.Len() {
		t.Errorf("clamped Corrupt changed length to %d", got)
	}
	if !c.Corrupt(c.Len(), 5).Equal(c) || !c.Corrupt(-1, 5).Equal(c) {
		t.Error("out-of-bounds Corrupt must be a no-op")
	}
}

func TestSliceDigestsLocalizeCorruption(t *testing.T) {
	c := NewUniform(9, 10_000)
	sums := c.SliceDigests(1000)
	if len(sums) != 10 {
		t.Fatalf("got %d block sums, want 10", len(sums))
	}
	bad := c.Corrupt(4500, 10)
	badSums := bad.SliceDigests(1000)
	for i := range sums {
		if (sums[i] != badSums[i]) != (i == 4) {
			t.Errorf("block %d: sum change mismatch (want only block 4 perturbed)", i)
		}
	}
	// Short tail block.
	if n := len(NewUniform(1, 2500).SliceDigests(1000)); n != 3 {
		t.Errorf("2500/1000 bytes: got %d blocks, want 3", n)
	}
}

func TestCorruptDigest(t *testing.T) {
	seen := map[uint64]bool{}
	for _, s := range []uint64{0, 1, 42, ^uint64(0), NewUniform(3, 100).Digest()} {
		m := CorruptDigest(s)
		if m == s {
			t.Errorf("CorruptDigest(%#x) returned its input", s)
		}
		if m != CorruptDigest(s) {
			t.Errorf("CorruptDigest(%#x) is not deterministic", s)
		}
		seen[m] = true
	}
	if len(seen) != 5 {
		t.Errorf("CorruptDigest collided across %d distinct inputs", 5-len(seen)+len(seen))
	}
}
