// Openscience replays a scaled-down Roadrunner Open Science campaign
// (§5): a sequence of parallel archive jobs with realistic size spreads
// and background trunk sharing, reported the way the paper's Figures
// 8–11 report them. Run cmd/archsim -exp campaign for the full 62-job
// replay.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/archive"
	"repro/internal/pftool"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	jobs := flag.Int("jobs", 12, "number of archive jobs")
	seed := flag.Int64("seed", 2010, "campaign seed")
	flag.Parse()

	clock := simtime.NewClock()
	sys := archive.NewDefault(clock)

	clock.Go(func() {
		cfg := workload.PaperCampaign(*seed)
		cfg.Jobs = *jobs
		cfg.MaxSimFiles = 20000 // keep the demo snappy
		res, err := archive.RunCampaign(sys, cfg, pftool.DefaultTunables(), os.Stdout)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Println()
		t := stats.NewTable("figure", "min", "mean", "max", "unit")
		f8, f9, f10, f11 := res.Figure8(), res.Figure9(), res.Figure10(), res.Figure11()
		t.Row("files/job (Fig 8)", f8.Min(), f8.Mean(), f8.Max(), "files")
		t.Row("data/job (Fig 9)", f9.Min(), f9.Mean(), f9.Max(), "GB")
		t.Row("rate/job (Fig 10)", f10.Min(), f10.Mean(), f10.Max(), "MB/s")
		t.Row("avg file size (Fig 11)", f11.Min(), f11.Mean(), f11.Max(), "MB")
		fmt.Print(t.String())
		fmt.Printf("\ncampaign moved %.1f TB in %v of virtual time\n",
			f9.Sum()/1000, clock.Now())
	})

	if _, err := clock.Run(); err != nil {
		log.Fatal(err)
	}
}
