// Operations tours the operational machinery around the archive: the
// chroot jail that keeps users from thrashing tape (§4.2.3), the
// multi-dimensional metadata catalog (§7 future work), volume
// reclamation after synchronous deletes, a drive-failure drill on the
// fault-injection registry (dead drives reaped mid-migration, audit
// clean), and a two-cell TSM federation surviving a server failure
// (§6.4 future work).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/hsm"
	"repro/internal/jail"
	"repro/internal/metadb"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/synthetic"
	"repro/internal/tape"
	"repro/internal/tsm"
)

func main() {
	log.SetFlags(0)
	clock := simtime.NewClock()
	sys := archive.NewDefault(clock)

	clock.Go(func() {
		// Land and migrate a project so there is tape state to manage.
		sys.Archive.MkdirAll("/climate")
		var infos []pfs.Info
		for i := 0; i < 30; i++ {
			p := fmt.Sprintf("/climate/run%03d.nc", i)
			sys.Archive.WriteFile(p, synthetic.NewUniform(uint64(i+1), 1e9))
			sys.Archive.SetXattr(p, "owner", []string{"alice", "bob"}[i%2])
			info, _ := sys.Archive.Stat(p)
			infos = append(infos, info)
		}
		if _, err := sys.HSM.Migrate(infos, hsm.MigrateOptions{Balanced: true}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("setup    : 30 GB migrated to tape for project 'climate'")

		// --- The jail (§4.2.3) ---
		can, err := sys.TrashCan()
		if err != nil {
			log.Fatal(err)
		}
		j := jail.New(sys.Archive, sys.HSM, can, jail.Policy{})
		if _, err := j.Grep("/climate", []byte("pattern"), jail.GrepNaive); err != nil {
			fmt.Println("jail     : grep denied —", err)
		}
		entries, _ := j.Ls("/climate")
		fmt.Printf("jail     : ls works (%d entries, zero tape I/O)\n", len(entries))
		if _, err := j.Read("/climate/run004.nc"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("jail     : cat run004.nc recalled it transparently in tape order")

		// --- The catalog (§7) ---
		cat := catalog.New(clock, 0)
		n, err := catalog.IndexArchive(cat, sys.Archive, sys.Shadow, nil)
		if err != nil {
			log.Fatal(err)
		}
		mig := pfs.Migrated
		hits := cat.Search(catalog.Query{Owner: "alice", State: &mig, MinSize: 1e6})
		fmt.Printf("catalog  : indexed %d files; alice's migrated files >1MB: %d\n", n, len(hits))
		if len(hits) > 0 {
			onSame := cat.Search(catalog.Query{Volume: hits[0].Volume})
			fmt.Printf("catalog  : %d of them share tape %s — recall them together\n", len(onSame), hits[0].Volume)
		}

		// --- Drive-failure drill (fault registry) ---
		// Two of the 24 LTO-4 drives die permanently mid-migration. The
		// TSM server reaps them from rotation, re-drives the interrupted
		// transactions on survivors under bounded backoff, and the
		// migration completes; the audit proves nothing was lost or
		// double-archived.
		reg := faults.New(clock, 1)
		sys.InstallFaults(reg)
		sys.Archive.MkdirAll("/drill")
		var drill []pfs.Info
		for i := 0; i < 20; i++ {
			p := fmt.Sprintf("/drill/ckpt%02d.h5", i)
			sys.Archive.WriteFile(p, synthetic.NewUniform(uint64(100+i), 2e9))
			info, _ := sys.Archive.Stat(p)
			drill = append(drill, info)
		}
		drives := sys.DriveNames()
		now := clock.Now()
		reg.FailAt(faults.DriveComponent(drives[0]), now+5*time.Second)
		reg.FailAt(faults.DriveComponent(drives[1]), now+10*time.Second)
		dres, err := sys.HSM.Migrate(drill, hsm.MigrateOptions{Balanced: true})
		if err != nil {
			log.Fatal(err)
		}
		audit, err := sys.Audit()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("drill    : %s and %s died mid-migrate; %d/%d files still reached tape (%d TSM retries)\n",
			drives[0], drives[1], dres.Files, len(drill), sys.TSM.Stats().Retries)
		fmt.Printf("drill    : %d/%d drives left in rotation; archive audit clean: %v\n",
			len(sys.Library.UpDrives()), len(drives), audit.Clean())

		// --- Synchronous delete + reclamation ---
		for _, f := range infos[:20] {
			if _, err := j.Rm("alice", f.Path); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := sys.Deleter.Purge(can, nil); err != nil {
			log.Fatal(err)
		}
		res, err := sys.TSM.ReclaimThreshold("fta01", 0.6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reclaim  : after deleting 20 files, reclaimed %d volume(s), freed %.0f GB of tape\n",
			res.VolumesReclaimed, float64(res.BytesFreed)/1e9)

		// --- Federation (§6.4) ---
		cl := cluster.New(clock, cluster.RoadrunnerConfig())
		mkCell := func(name string) *federation.Cell {
			cfg := pfs.GPFSConfig("gpfs-" + name)
			fs := pfs.New(clock, cfg)
			lib := tape.NewLibrary(clock, 4, 32, 1, tape.LTO4())
			srv := tsm.NewServer(clock, tsm.DefaultConfig(), lib)
			shadow := metadb.New(clock, 0)
			return &federation.Cell{
				Name: name, FS: fs, Server: srv, Shadow: shadow,
				Engine: hsm.New(clock, fs, srv, shadow, cl.Nodes(), hsm.Config{}),
			}
		}
		fed, err := federation.New(clock, mkCell("east"), mkCell("west"))
		if err != nil {
			log.Fatal(err)
		}
		// One failure mechanism: cell health lives in the same registry
		// as the drive faults, so SetDown below lands in its log.
		fed.BindFaults(reg)
		var fedInfos []pfs.Info
		for _, proj := range []string{"astro", "plasma", "cosmo", "fusion"} {
			cell := fed.CellFor("/" + proj)
			cell.FS.MkdirAll("/" + proj)
			p := "/" + proj + "/data.bin"
			cell.FS.WriteFile(p, synthetic.NewUniform(7, 2e9))
			info, _ := cell.FS.Stat(p)
			fedInfos = append(fedInfos, info)
		}
		if _, err := fed.Migrate(fedInfos, hsm.MigrateOptions{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("federate : %d projects spread over cells %v\n", len(fedInfos), fed.HealthySlice())
		fed.Cells()[0].SetDown(true)
		survived := 0
		for _, f := range fedInfos {
			if _, err := fed.Stat(f.Path); err == nil {
				survived++
			}
		}
		fmt.Printf("federate : cell %s failed; %d/%d projects still fully served (the paper's single TSM server would serve 0)\n",
			fed.Cells()[0].Name, survived, len(fedInfos))
		fmt.Printf("faults   : the registry logged %d fault event(s) across drives and cells\n", len(reg.Log()))
	})

	if _, err := clock.Run(); err != nil {
		log.Fatal(err)
	}
}
