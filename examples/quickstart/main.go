// Quickstart: stand up the COTS parallel archive, archive a project
// tree from scratch with pfcp, verify it with pfcm, migrate it to tape,
// and recall it back — the full §4 lifecycle in one run.
package main

import (
	"fmt"
	"log"

	"repro/internal/archive"
	"repro/internal/hsm"
	"repro/internal/pfs"
	"repro/internal/pftool"
	"repro/internal/simtime"
	"repro/internal/synthetic"
)

func main() {
	log.SetFlags(0)
	clock := simtime.NewClock()
	sys := archive.NewDefault(clock)

	clock.Go(func() {
		// A user's project lands on scratch: 200 result files plus one
		// 25 GB aggregate dump.
		if err := sys.Scratch.MkdirAll("/scratch/myproj/results"); err != nil {
			log.Fatal(err)
		}
		specs := make([]pfs.FileSpec, 200)
		for i := range specs {
			specs[i] = pfs.FileSpec{
				Path:    fmt.Sprintf("/scratch/myproj/results/run%03d.dat", i),
				Content: synthetic.NewUniform(uint64(i+1), 200e6),
			}
		}
		if err := sys.Scratch.WriteFiles(specs); err != nil {
			log.Fatal(err)
		}
		dump := synthetic.NewUniform(7777, 25e9)
		if err := sys.Scratch.WriteFile("/scratch/myproj/checkpoint.bin", dump); err != nil {
			log.Fatal(err)
		}

		tun := pftool.DefaultTunables()

		// 1. Archive with the parallel copy.
		cres, err := sys.Pfcp("/scratch/myproj", "/archive/myproj", tun)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pfcp   :", cres.Summary())

		// 2. Verify byte content with the parallel compare.
		vres, err := sys.Pfcm("/scratch/myproj", "/archive/myproj", tun)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pfcm   :", vres.Summary())

		// 3. Migrate the archive copy to tape (size-balanced movers).
		mres, err := sys.MigrateTree("/archive/myproj", hsm.MigrateOptions{Balanced: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrate: %d files, %.1f GB to tape; archive disk pool now holds %.1f GB\n",
			mres.Files, float64(mres.Bytes)/1e9, float64(sys.Archive.DefaultPool().Used())/1e9)

		// 4. Scratch gets scrubbed (it is scratch), then the user wants
		// the data back: pfcp from the archive recalls from tape in
		// tape order and copies back.
		if err := sys.Scratch.RemoveAll("/scratch/myproj"); err != nil {
			log.Fatal(err)
		}
		rres, err := sys.PfcpRetrieve("/archive/myproj", "/scratch/myproj", tun)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("recall :", rres.Summary())

		// Spot-check the round trip.
		got, err := sys.Scratch.ReadContent("/scratch/myproj/checkpoint.bin")
		if err != nil {
			log.Fatal(err)
		}
		if !got.Equal(dump) {
			log.Fatal("round-trip content mismatch")
		}
		fmt.Println("round-trip verified: checkpoint.bin is byte-identical")
		fmt.Printf("virtual wall clock consumed: %v\n", clock.Now())
	})

	if _, err := clock.Run(); err != nil {
		log.Fatal(err)
	}
}
