// Hsmpolicy walks the ILM and delete machinery of §4.2: placement
// policies route new files to pools, a threshold policy picks migration
// victims when the fast pool fills, the balanced parallel migrator
// sends them to tape, a user deletes through the trashcan, and the
// synchronous deleter removes file-system and tape copies together —
// with a reconcile pass at the end proving nothing was orphaned.
package main

import (
	"fmt"
	"log"

	"repro/internal/archive"
	"repro/internal/hsm"
	"repro/internal/ilm"
	"repro/internal/pfs"
	"repro/internal/simtime"
	"repro/internal/synthetic"
)

func main() {
	log.SetFlags(0)
	clock := simtime.NewClock()

	// A small archive so the threshold trips visibly: 60 GB fast pool.
	opts := archive.DefaultOptions()
	opts.Archive.Pools = []pfs.PoolSpec{
		{Name: "fast", Capacity: 60e9, Rate: 3e9},
		{Name: "slow", Capacity: 100e12, Rate: 0.8e9},
	}
	sys := archive.New(clock, opts)

	clock.Go(func() {
		placement := sys.Placement()

		// Land 55 GB of data, placing each file by policy.
		if err := sys.Archive.MkdirAll("/data"); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 55; i++ {
			p := fmt.Sprintf("/data/big%02d.dat", i)
			pool := placement.Choose(p, 1e9, clock.Now())
			if err := sys.Archive.WriteFileIn(p, synthetic.NewUniform(uint64(i+1), 1e9), pool); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			p := fmt.Sprintf("/data/note%03d.txt", i)
			pool := placement.Choose(p, 2048, clock.Now())
			if err := sys.Archive.WriteFileIn(p, synthetic.NewUniform(uint64(1000+i), 2048), pool); err != nil {
				log.Fatal(err)
			}
		}
		fast, _ := sys.Archive.Pool("fast")
		slow, _ := sys.Archive.Pool("slow")
		fmt.Printf("placement: fast pool %.1f GB (big files), slow pool %d KB (small files)\n",
			float64(fast.Used())/1e9, slow.Used()/1024)

		// The fast pool is past 90%: the threshold policy picks the
		// oldest files until it would be back under 50%.
		tp := ilm.ThresholdPolicy{Pool: "fast", High: 0.9, Low: 0.5}
		victims, err := tp.Candidates(sys.Archive)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("threshold: pool at %.0f%%, policy selected %d victims\n",
			100*float64(fast.Used())/float64(fast.Spec.Capacity), len(victims))

		mres, err := sys.HSM.Migrate(victims, hsm.MigrateOptions{Balanced: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrate  : %d files to tape, pool now at %.0f%%\n",
			mres.Files, 100*float64(fast.Used())/float64(fast.Spec.Capacity))

		// A user deletes a migrated file: it goes to the trashcan (a
		// rename), then the nightly purge issues the synchronous
		// delete — file system and TSM object go together.
		can, err := sys.TrashCan()
		if err != nil {
			log.Fatal(err)
		}
		victim := victims[0].Path
		if _, err := can.Delete("alice", victim); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trash    : %s -> trashcan (undelete still possible)\n", victim)

		before := sys.TSM.NumObjects()
		pres, err := sys.Deleter.Purge(can, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("purge    : removed %d file(s), deleted %d tape object(s) synchronously (TSM: %d -> %d objects)\n",
			pres.Removed, pres.TapeDeletes, before, sys.TSM.NumObjects())

		// Reconciliation finds nothing: no orphans were ever created.
		rres, err := sys.Recon.Reconcile()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reconcile: scanned %d files / %d objects, %d orphans (synchronous delete left none)\n",
			rres.FSFiles, rres.TSMObjects, rres.OrphansDeleted)
	})

	if _, err := clock.Run(); err != nil {
		log.Fatal(err)
	}
}
