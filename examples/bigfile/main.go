// Bigfile exercises §4.5's restart-able transfer on the paper's own
// nightmare case — "what about restarting a 40 Terabyte file, we don't
// want to start it from the beginning": a 40 TB checkpoint is archived
// through the ArchiveFUSE N-to-N path, the transfer dies partway, and
// the restart re-sends only the chunks that were not marked good.
package main

import (
	"fmt"
	"log"

	"repro/internal/archive"
	"repro/internal/chunkfs"
	"repro/internal/pftool"
	"repro/internal/simtime"
	"repro/internal/synthetic"
)

func main() {
	log.SetFlags(0)
	clock := simtime.NewClock()
	sys := archive.NewDefault(clock)

	clock.Go(func() {
		const fileSize = int64(40e12) // 40 TB
		content := synthetic.NewUniform(40, fileSize)
		if err := sys.Scratch.MkdirAll("/scratch"); err != nil {
			log.Fatal(err)
		}
		if err := sys.Scratch.WriteFile("/scratch/checkpoint-40TB.bin", content); err != nil {
			log.Fatal(err)
		}

		tun := pftool.DefaultTunables()
		tun.VeryLargeThreshold = 100e9
		tun.FuseChunkSize = 256e9 // 157 chunk files

		// First attempt: a "network problem" kills the transfer at
		// chunk 100 of 157.
		failed := false
		tun.InjectFault = func(dst string, chunk int) bool {
			if chunk == 100 && !failed {
				failed = true
				return true
			}
			return false
		}
		res1, err := sys.Pfcp("/scratch/checkpoint-40TB.bin", "/archive/checkpoint-40TB.bin", tun)
		fmt.Printf("attempt 1: %d/157 chunks landed before the failure (%v): %v\n",
			res1.ChunksCopied, res1.Elapsed(), err)

		// Restart: good chunks are skipped, the rest are re-sent.
		tun2 := pftool.DefaultTunables()
		tun2.VeryLargeThreshold = 100e9
		tun2.FuseChunkSize = 256e9
		tun2.Restart = true
		res2, err := sys.Pfcp("/scratch/checkpoint-40TB.bin", "/archive/checkpoint-40TB.bin", tun2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attempt 2: skipped %d good chunks, copied %d, moved %.1f TB instead of 40 TB (%v)\n",
			res2.ChunksSkipped, res2.ChunksCopied, float64(res2.BytesCopied)/1e12, res2.Elapsed())

		// The destination is an ArchiveFUSE chunk set; reassemble and
		// verify end to end.
		dir := chunkfs.ChunkDir("/archive/checkpoint-40TB.bin")
		if err := chunkfs.Join(sys.Archive, dir, "/archive/checkpoint-40TB.bin"); err != nil {
			log.Fatal(err)
		}
		got, err := sys.Archive.ReadContent("/archive/checkpoint-40TB.bin")
		if err != nil {
			log.Fatal(err)
		}
		if !got.Equal(content) {
			log.Fatal("40 TB round trip FAILED byte comparison")
		}
		fmt.Println("verified : archived 40 TB file is byte-identical to the source")
	})

	if _, err := clock.Run(); err != nil {
		log.Fatal(err)
	}
}
