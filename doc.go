// Package repro is a from-scratch reproduction of "Integration
// Experiences and Performance Studies of A COTS Parallel Archive
// System" (Chen et al., LANL, IEEE Cluster 2010): PFTool and the rest
// of the paper's glue implemented for real, with every COTS substrate
// (GPFS, Panasas, TSM, LTO-4 tape, the FTA cluster fabric) rebuilt as a
// calibrated discrete-event simulator.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root-level benchmarks (bench_test.go) regenerate every
// table and figure of the paper's evaluation at benchmark scale;
// cmd/archsim regenerates them at full scale.
package repro
